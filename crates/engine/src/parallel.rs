//! Morsel-driven parallel runtime.
//!
//! Operators no longer split their input into one contiguous chunk per
//! scoped thread (PR-2's scheme, whose per-operator spawns cost more
//! than they saved at moderate sizes). Instead a lazily-initialized
//! **persistent worker pool** executes *morsels* — fixed-size runs of
//! [`MORSEL_ROWS`] consecutive items claimed from an atomic cursor:
//!
//! * the pool is created on first parallel use (shared via `OnceLock`),
//!   grows on demand up to [`MAX_POOL_WORKERS`] helper threads, and can
//!   be [shut down cleanly](shutdown_pool) and re-grown later;
//! * each participating worker (the issuing thread included) loops:
//!   claim the next morsel index from the cursor, evaluate the closure
//!   over that contiguous slice, store the result in the morsel's slot;
//! * slots merge **in morsel order**, so results — and result *order* —
//!   are byte-identical to a sequential left-to-right evaluation, and
//!   skew costs at most one morsel of imbalance instead of a whole
//!   chunk;
//! * errors are resolved in morsel order too: the error reported is the
//!   one a sequential scan would have hit first.
//!
//! Scheduler behaviour is observable through [`ParallelStats`]
//! (morsels dispatched, cursor contention retries, per-run worker
//! count), surfaced by `esql-shell`'s `.stats` meta-command.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::thread::JoinHandle;

use crate::error::EngineResult;

/// Rows (items) per morsel. Small enough that a straggler worker holds
/// the run back by at most ~one cache-resident unit of work, large
/// enough that claiming a morsel (one CAS) is noise next to evaluating
/// it. 2048 rows of `i64` is 16 KiB — half a typical L1d.
pub const MORSEL_ROWS: usize = 2048;

/// Helper threads the pool will keep at most; the issuing thread always
/// participates, so up to `MAX_POOL_WORKERS + 1` lanes drain morsels.
const MAX_POOL_WORKERS: usize = 15;

// ---------------------------------------------------------------------
// Observability counters (process-wide, relaxed: they are diagnostics,
// not synchronization).
// ---------------------------------------------------------------------

static MORSELS_DISPATCHED: AtomicU64 = AtomicU64::new(0);
static CURSOR_RETRIES: AtomicU64 = AtomicU64::new(0);
static PARALLEL_RUNS: AtomicU64 = AtomicU64::new(0);
static LAST_WORKERS: AtomicU64 = AtomicU64::new(0);

/// Snapshot of the morsel scheduler's counters since process start.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ParallelStats {
    /// Morsels claimed and evaluated by all workers across all runs.
    pub morsels_dispatched: u64,
    /// Failed compare-exchange attempts on the morsel cursor — a proxy
    /// for scheduler contention (workers colliding on the same claim).
    pub cursor_retries: u64,
    /// Parallel runs executed (sequential fast-path runs not counted).
    pub parallel_runs: u64,
    /// Worker count of the most recent parallel run (issuing thread
    /// included).
    pub last_workers: u64,
}

/// Read the scheduler counters.
pub fn parallel_stats() -> ParallelStats {
    ParallelStats {
        morsels_dispatched: MORSELS_DISPATCHED.load(Ordering::Relaxed),
        cursor_retries: CURSOR_RETRIES.load(Ordering::Relaxed),
        parallel_runs: PARALLEL_RUNS.load(Ordering::Relaxed),
        last_workers: LAST_WORKERS.load(Ordering::Relaxed),
    }
}

// ---------------------------------------------------------------------
// Worker-count policy.
// ---------------------------------------------------------------------

/// Worker count actually used for an input of `len` items when the
/// caller requested `parallelism`. Derived from the **morsel count**:
/// there is never a reason to wake more workers than there are morsels
/// to claim, and — unlike the old `len / threshold` chunk clamp — a
/// 4-way request on any input of more than four morsels gets its four
/// workers. Clamped to the machine's available parallelism
/// (oversubscribing a saturated machine only adds scheduling overhead).
pub fn effective_workers(parallelism: usize, len: usize) -> usize {
    // Short-circuit before touching the core count: sequential requests
    // and sub-morsel inputs are the overwhelmingly common case (every
    // operator eval in a fixpoint loop lands here), and
    // `available_parallelism` is a syscall.
    if parallelism <= 1 || len <= MORSEL_ROWS {
        return 1;
    }
    workers_for(parallelism, len, hardware_lanes())
}

/// The machine's core count, read once per process. Affinity changes
/// after startup are ignored — a stale clamp only costs a little
/// oversubscription, while re-querying costs a syscall per operator.
fn hardware_lanes() -> usize {
    static HW: OnceLock<usize> = OnceLock::new();
    *HW.get_or_init(|| std::thread::available_parallelism().map_or(1, std::num::NonZero::get))
}

/// The pure policy behind [`effective_workers`], parameterized by the
/// machine's core count so the boundary cases are testable anywhere.
fn workers_for(parallelism: usize, len: usize, hw: usize) -> usize {
    if parallelism <= 1 || len <= MORSEL_ROWS {
        return 1;
    }
    let morsels = len.div_ceil(MORSEL_ROWS);
    parallelism
        .min(hw.max(1))
        .min(morsels)
        .clamp(1, MAX_POOL_WORKERS + 1)
}

// ---------------------------------------------------------------------
// The persistent pool.
// ---------------------------------------------------------------------

/// A unit of pool work. Lifetime-erased: see the SAFETY argument in
/// [`run_morsel_ranges`].
struct Job {
    run: Box<dyn FnOnce() + Send + 'static>,
}

struct PoolState {
    jobs: VecDeque<Job>,
    /// Worker threads currently alive (spawned and not yet exited).
    live_workers: usize,
    /// When set, workers drain remaining jobs and exit.
    shutting_down: bool,
}

struct Pool {
    state: Mutex<PoolState>,
    work_ready: Condvar,
    handles: Mutex<Vec<JoinHandle<()>>>,
}

fn pool() -> &'static Pool {
    static POOL: OnceLock<Pool> = OnceLock::new();
    POOL.get_or_init(|| Pool {
        state: Mutex::new(PoolState {
            jobs: VecDeque::new(),
            live_workers: 0,
            shutting_down: false,
        }),
        work_ready: Condvar::new(),
        handles: Mutex::new(Vec::new()),
    })
}

impl Pool {
    /// Grow the pool to at least `target` helper threads (capped at
    /// [`MAX_POOL_WORKERS`]). Workers are spawned once and then parked
    /// on the job queue between runs — the whole point of the pool is
    /// that per-operator parallelism stops paying thread-start latency.
    fn ensure_workers(&'static self, target: usize) {
        let target = target.min(MAX_POOL_WORKERS);
        let mut handles = self.handles.lock().unwrap();
        let mut state = self.state.lock().unwrap();
        if state.shutting_down {
            return;
        }
        while state.live_workers < target {
            state.live_workers += 1;
            handles.push(
                std::thread::Builder::new()
                    .name("eds-morsel".into())
                    .spawn(move || worker_loop(self))
                    .expect("spawn morsel worker"),
            );
        }
    }

    fn submit(&self, job: Job) {
        let mut state = self.state.lock().unwrap();
        state.jobs.push_back(job);
        drop(state);
        self.work_ready.notify_one();
    }
}

fn worker_loop(pool: &'static Pool) {
    loop {
        let mut state = pool.state.lock().unwrap();
        loop {
            if let Some(job) = state.jobs.pop_front() {
                drop(state);
                // A panicking closure must not kill the worker: the
                // issuing thread re-raises the panic (see FinishGuard),
                // and the pool thread survives for the next run.
                let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(job.run));
                break;
            }
            if state.shutting_down {
                state.live_workers -= 1;
                return;
            }
            state = pool.work_ready.wait(state).unwrap();
        }
    }
}

/// Shut the worker pool down cleanly: pending jobs are drained, every
/// worker thread exits and is joined. The pool re-grows lazily on the
/// next parallel evaluation, so this is safe to call at any quiescent
/// point (e.g. shell exit); it is a no-op when no worker was ever
/// started.
pub fn shutdown_pool() {
    let p = pool();
    {
        let mut state = p.state.lock().unwrap();
        state.shutting_down = true;
    }
    p.work_ready.notify_all();
    let handles: Vec<JoinHandle<()>> = std::mem::take(&mut *p.handles.lock().unwrap());
    for h in handles {
        let _ = h.join();
    }
    let mut state = p.state.lock().unwrap();
    debug_assert_eq!(state.live_workers, 0);
    state.shutting_down = false;
}

// ---------------------------------------------------------------------
// Running a morsel scan.
// ---------------------------------------------------------------------

/// Per-run shared state. `Arc`-owned (not borrowed) so a helper's final
/// "I am done" handshake never touches the issuing thread's stack.
struct RunState<R> {
    /// Next unclaimed morsel index.
    cursor: AtomicUsize,
    /// One result slot per morsel; merged in index order.
    slots: Mutex<Vec<Option<EngineResult<R>>>>,
    /// Helper jobs that have not yet finished.
    helpers_left: Mutex<usize>,
    finished: Condvar,
    /// Set when a helper's closure panicked; re-raised by the issuer.
    panicked: AtomicBool,
}

/// Decrements `helpers_left` on scope exit — including unwinds — so the
/// issuing thread can never deadlock waiting on a panicked helper.
struct FinishGuard<'a, R> {
    state: &'a RunState<R>,
}

impl<R> Drop for FinishGuard<'_, R> {
    fn drop(&mut self) {
        if std::thread::panicking() {
            self.state.panicked.store(true, Ordering::Relaxed);
        }
        let mut left = self.state.helpers_left.lock().unwrap();
        *left -= 1;
        // Notify while holding the lock: `RunState` is Arc-owned, so
        // the issuer waking early cannot invalidate it.
        self.state.finished.notify_all();
    }
}

/// Blocks until every helper job has exited — on scope exit *including
/// unwinds*, so a panic in the issuing thread's own closure can never
/// let the frame (and the borrows helpers hold into it) die early.
struct HelperWait<'a, R> {
    state: &'a RunState<R>,
}

impl<R> Drop for HelperWait<'_, R> {
    fn drop(&mut self) {
        let mut left = self.state.helpers_left.lock().unwrap();
        while *left > 0 {
            left = self.state.finished.wait(left).unwrap();
        }
    }
}

/// Claim the next morsel index below `n`, counting CAS contention.
fn claim(cursor: &AtomicUsize, n: usize) -> Option<usize> {
    let mut cur = cursor.load(Ordering::Relaxed);
    loop {
        if cur >= n {
            return None;
        }
        match cursor.compare_exchange_weak(cur, cur + 1, Ordering::AcqRel, Ordering::Relaxed) {
            Ok(_) => return Some(cur),
            Err(actual) => {
                CURSOR_RETRIES.fetch_add(1, Ordering::Relaxed);
                cur = actual;
            }
        }
    }
}

/// One worker's share of a run: claim morsels until the cursor is
/// exhausted, evaluating `f` over each `[lo, hi)` range and parking the
/// result in that morsel's slot.
fn drain_morsels<R, F>(len: usize, n_morsels: usize, f: &F, state: &RunState<R>)
where
    F: Fn(usize, usize) -> EngineResult<R>,
{
    while let Some(i) = claim(&state.cursor, n_morsels) {
        MORSELS_DISPATCHED.fetch_add(1, Ordering::Relaxed);
        let lo = i * MORSEL_ROWS;
        let hi = ((i + 1) * MORSEL_ROWS).min(len);
        let res = f(lo, hi);
        state.slots.lock().unwrap()[i] = Some(res);
    }
}

/// Evaluate `f` over `[lo, hi)` index ranges covering `[0, len)` in
/// [`MORSEL_ROWS`]-sized morsels, using `workers` lanes (the calling
/// thread plus `workers - 1` pool helpers), and return the per-morsel
/// results **in morsel order**. With `workers <= 1` (or an input of at
/// most one morsel) this is exactly `vec![f(0, len)?]` — the sequential
/// path pays nothing. Errors surface in morsel order: the `Err` a
/// sequential scan would produce first wins.
pub(crate) fn run_morsel_ranges<R, F>(len: usize, workers: usize, f: F) -> EngineResult<Vec<R>>
where
    R: Send,
    F: Fn(usize, usize) -> EngineResult<R> + Sync,
{
    if workers <= 1 || len <= MORSEL_ROWS {
        return Ok(vec![f(0, len)?]);
    }
    let n_morsels = len.div_ceil(MORSEL_ROWS);
    let workers = workers.min(n_morsels).min(MAX_POOL_WORKERS + 1);
    PARALLEL_RUNS.fetch_add(1, Ordering::Relaxed);
    LAST_WORKERS.store(workers as u64, Ordering::Relaxed);

    let state: Arc<RunState<R>> = Arc::new(RunState {
        cursor: AtomicUsize::new(0),
        slots: Mutex::new((0..n_morsels).map(|_| None).collect()),
        helpers_left: Mutex::new(workers - 1),
        finished: Condvar::new(),
        panicked: AtomicBool::new(false),
    });

    let p = pool();
    p.ensure_workers(workers - 1);
    let fref = &f;
    for _ in 0..workers - 1 {
        let st = Arc::clone(&state);
        let job: Box<dyn FnOnce() + Send + '_> = Box::new(move || {
            let _finish = FinishGuard { state: &st };
            drain_morsels(len, n_morsels, fref, &st);
        });
        // SAFETY: the job borrows `f` (and, transitively, whatever `f`
        // borrows) from this stack frame, so the `'static` claim below
        // is a lie the surrounding protocol makes good on: before this
        // frame dies — by return *or* unwind (HelperWait) — the issuing
        // thread blocks until `helpers_left == 0`, and a helper
        // decrements that counter only after its closure has returned
        // or unwound (FinishGuard). Every borrow is therefore dead
        // before the frame is. The counter handshake itself lives in
        // the Arc-owned RunState, not on this stack.
        let job = Job {
            run: unsafe {
                std::mem::transmute::<Box<dyn FnOnce() + Send + '_>, Box<dyn FnOnce() + Send>>(job)
            },
        };
        p.submit(job);
    }

    {
        let _wait = HelperWait { state: &state };
        drain_morsels(len, n_morsels, &f, &state);
    }

    if state.panicked.load(Ordering::Relaxed) {
        panic!("morsel worker panicked");
    }
    let slots = std::mem::take(&mut *state.slots.lock().unwrap());
    slots
        .into_iter()
        .map(|s| s.expect("every morsel claimed"))
        .collect()
}

/// Slice flavour of [`run_morsel_ranges`]: evaluate `f` over contiguous
/// morsel-sized sub-slices of `items`, results merged in input order.
pub(crate) fn run_morsels<T, R, F>(items: &[T], workers: usize, f: F) -> EngineResult<Vec<R>>
where
    T: Sync,
    R: Send,
    F: Fn(&[T]) -> EngineResult<R> + Sync,
{
    run_morsel_ranges(items.len(), workers, |lo, hi| f(&items[lo..hi]))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::EngineError;

    #[test]
    fn morsels_merge_in_order() {
        let items: Vec<u64> = (0..10_000).collect();
        for workers in [1usize, 2, 4, 7] {
            let parts =
                run_morsels(&items, workers, |chunk| Ok(chunk.to_vec())).expect("no errors");
            let merged: Vec<u64> = parts.into_iter().flatten().collect();
            assert_eq!(merged, items, "workers={workers} broke order");
        }
    }

    #[test]
    fn ranges_cover_exactly_once() {
        let parts = run_morsel_ranges(MORSEL_ROWS * 3 + 17, 4, |lo, hi| Ok((lo, hi))).unwrap();
        assert_eq!(parts.len(), 4);
        let mut expect_lo = 0;
        for (lo, hi) in parts {
            assert_eq!(lo, expect_lo);
            assert!(hi > lo);
            expect_lo = hi;
        }
        assert_eq!(expect_lo, MORSEL_ROWS * 3 + 17);
    }

    #[test]
    fn error_surfaces_in_morsel_order() {
        let items: Vec<u64> = (0..3 * MORSEL_ROWS as u64).collect();
        // Every morsel containing a multiple of 1000 fails, reporting
        // the first offending value it sees; the error that wins must be
        // the one sequential evaluation would hit first (morsel 0's).
        let err = run_morsels(&items, 4, |chunk| {
            match chunk.iter().find(|v| **v % 1000 == 0) {
                Some(v) => Err(EngineError::UnknownRelation(v.to_string())),
                None => Ok(()),
            }
        })
        .expect_err("must fail");
        assert_eq!(
            err.to_string(),
            EngineError::UnknownRelation("0".into()).to_string()
        );
    }

    #[test]
    fn worker_policy_derives_from_morsel_count() {
        // parallelism=1: never partition, whatever the size.
        assert_eq!(workers_for(1, 100 * MORSEL_ROWS, 8), 1);
        // One morsel (boundary inclusive): sequential.
        assert_eq!(workers_for(4, MORSEL_ROWS, 8), 1);
        // One row past the boundary: two morsels, two workers.
        assert_eq!(workers_for(4, MORSEL_ROWS + 1, 8), 2);
        // A 4-way request at moderate size is honored as soon as four
        // morsels exist — the old `len / 512` chunk clamp degraded this.
        assert_eq!(workers_for(4, 4 * MORSEL_ROWS, 8), 4);
        // Large input: bounded by requested parallelism...
        assert_eq!(workers_for(4, 1_000_000, 8), 4);
        // ...by the machine...
        assert_eq!(workers_for(8, 1_000_000, 2), 2);
        // ...and by the pool cap.
        assert_eq!(workers_for(64, 1_000_000, 64), MAX_POOL_WORKERS + 1);
        // Zero-core degenerate input never yields zero workers.
        assert_eq!(workers_for(4, 1_000_000, 0), 1);
    }

    #[test]
    fn stats_count_dispatches_and_workers() {
        let before = parallel_stats();
        let items: Vec<u64> = (0..4 * MORSEL_ROWS as u64).collect();
        let parts = run_morsels(&items, 3, |chunk| Ok(chunk.len() as u64)).unwrap();
        assert_eq!(parts.iter().sum::<u64>(), items.len() as u64);
        let after = parallel_stats();
        assert!(after.morsels_dispatched >= before.morsels_dispatched + 4);
        assert!(after.parallel_runs > before.parallel_runs);
        assert!(after.last_workers >= 1);
    }

    #[test]
    fn pool_survives_shutdown_and_regrows() {
        let items: Vec<u64> = (0..3 * MORSEL_ROWS as u64).collect();
        let sum = |chunk: &[u64]| Ok(chunk.iter().sum::<u64>());
        let total: u64 = run_morsels(&items, 4, sum).unwrap().iter().sum();
        shutdown_pool();
        // After a clean shutdown the pool re-grows lazily and the next
        // run produces identical results.
        let again: u64 = run_morsels(&items, 4, sum).unwrap().iter().sum();
        assert_eq!(total, again);
        shutdown_pool();
    }

    #[test]
    fn helper_panic_reaches_the_issuer() {
        let items: Vec<u64> = (0..3 * MORSEL_ROWS as u64).collect();
        let result = std::panic::catch_unwind(|| {
            let _ = run_morsels(&items, 2, |chunk| {
                if chunk.contains(&2_500) {
                    panic!("boom");
                }
                Ok(())
            });
        });
        assert!(result.is_err(), "panic in a morsel must reach the caller");
        // The pool must still be usable afterwards.
        let parts = run_morsels(&items, 2, |chunk| Ok(chunk.len())).unwrap();
        assert_eq!(parts.iter().sum::<usize>(), items.len());
    }
}
