//! # eds-engine — executable substrate for LERA plans
//!
//! The original EDS parallel database server is unavailable; this crate
//! is the faithful single-node substitute (see DESIGN.md). It evaluates
//! every LERA operator with deliberately simple physical strategies so
//! that the *logical* plan improvements produced by the rewriter are
//! directly measurable:
//!
//! * [`database::Database`] — catalog + object store + stored relations;
//! * [`eval`] — nested-loop `search`, `nest`/`unnest`, three-valued
//!   qualifications, collection broadcasting of field access and ordered
//!   comparisons;
//! * [`fixpoint`] — naive and semi-naive `fix` evaluation.

//! ```
//! use eds_engine::{eval, Database};
//! use eds_esql::parse_query;
//! use eds_lera::{translate_query, SchemaCtx};
//!
//! let mut db = Database::new();
//! db.execute_ddl(
//!     "TABLE T (X : INT);
//!      INSERT INTO T VALUES (1), (2), (3);",
//! ).unwrap();
//! let q = parse_query("SELECT X FROM T WHERE X > 1 ;").unwrap();
//! let (plan, _) = translate_query(&q, &SchemaCtx::new(&db.catalog)).unwrap();
//! assert_eq!(eval(&plan, &db).unwrap().len(), 2);
//! ```

#![warn(missing_docs)]

pub mod columnar;
pub mod compile;
pub mod database;
pub mod error;
pub mod eval;
pub mod fixpoint;
pub mod parallel;
pub mod reference;
pub mod relation;
pub mod stats;

pub use columnar::ColumnarRelation;
pub use compile::{CompiledScalar, EvalEnv};
pub use database::Database;
pub use error::{EngineError, EngineResult};
pub use eval::{
    eval, eval_const_scalar, eval_with, eval_with_params, EvalOptions, EvalStats, JoinMode,
    OptLevel,
};
pub use fixpoint::{FixMode, FixOptions};
pub use parallel::{effective_workers, parallel_stats, shutdown_pool, ParallelStats, MORSEL_ROWS};
pub use reference::eval_reference;
pub use relation::{Relation, Row, SharedRow};
pub use stats::{ColumnStats, TableStats};
