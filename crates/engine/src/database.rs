//! The database: catalog + object store + stored relations + functions.

use std::collections::HashMap;
use std::sync::{Arc, Mutex};

use eds_adt::{FunctionRegistry, ObjectStore, Oid, Value};
use eds_esql::{Catalog, Stmt, TableSchema};
use eds_lera::{Schema, SchemaCtx};

use crate::columnar::ColumnarRelation;
use crate::error::{EngineError, EngineResult};
use crate::relation::{Relation, Row};

/// An in-memory database instance.
#[derive(Debug)]
pub struct Database {
    /// Installed schema.
    pub catalog: Catalog,
    /// Object store (identity-bearing data).
    pub objects: ObjectStore,
    /// ADT function registry (extensible by the database implementor).
    pub functions: FunctionRegistry,
    relations: HashMap<String, Relation>,
    /// Columnar mirrors of stored relations, built lazily on first
    /// scan and invalidated by every mutation path (all of which go
    /// through methods of this struct — `relations` is private).
    /// `None` records "not column-friendly" so an all-spill table is
    /// not re-scanned on every query.
    columnar: Mutex<HashMap<String, Option<Arc<ColumnarRelation>>>>,
}

impl Default for Database {
    fn default() -> Self {
        Self::new()
    }
}

impl Database {
    /// Empty database with built-in functions.
    pub fn new() -> Self {
        Database {
            catalog: Catalog::new(),
            objects: ObjectStore::new(),
            functions: FunctionRegistry::with_builtins(),
            relations: HashMap::new(),
            columnar: Mutex::new(HashMap::new()),
        }
    }

    /// Drop the cached columnar mirror of `key` (already uppercased),
    /// called from every path that can change the stored rows.
    fn invalidate_columnar(&mut self, key: &str) {
        self.columnar
            .get_mut()
            .expect("columnar cache poisoned")
            .remove(key);
    }

    /// Columnar mirror of a stored base table, built on first use and
    /// cached until the table is mutated. `None` when the table does not
    /// exist or is not column-friendly (empty, or every attribute
    /// spills) — negative results are cached too.
    pub fn columnar(&self, name: &str) -> Option<Arc<ColumnarRelation>> {
        let key = name.to_ascii_uppercase();
        let mut cache = self.columnar.lock().expect("columnar cache poisoned");
        if let Some(entry) = cache.get(&key) {
            return entry.clone();
        }
        let built = self
            .relations
            .get(&key)
            .and_then(|rel| ColumnarRelation::build(rel).map(Arc::new));
        cache.insert(key, built.clone());
        built
    }

    /// Parse and install DDL from `src`; storage is allocated for tables,
    /// view schemas are inferred and registered, and `INSERT` statements
    /// are executed. Any query statements found are returned unexecuted.
    pub fn execute_ddl(&mut self, src: &str) -> EngineResult<Vec<Stmt>> {
        let stmts = eds_esql::parse_statements(src)?;
        let mut queries = Vec::new();
        for stmt in stmts {
            match stmt {
                Stmt::Query(_) => queries.push(stmt),
                Stmt::Insert(ins) => {
                    self.execute_insert(&ins)?;
                }
                ddl => self.install_stmt(&ddl)?,
            }
        }
        Ok(queries)
    }

    /// Install one DDL statement: catalog registration plus storage
    /// allocation (tables) or schema inference (views).
    pub fn install_stmt(&mut self, stmt: &Stmt) -> EngineResult<()> {
        self.catalog.install(stmt)?;
        match stmt {
            Stmt::TableDecl(t) => {
                let schema = self
                    .catalog
                    .table(&t.name)
                    .map(|s| Schema::new(s.columns.clone()))
                    .expect("just installed");
                let key = t.name.to_ascii_uppercase();
                self.relations.insert(key.clone(), Relation::empty(schema));
                self.invalidate_columnar(&key);
            }
            Stmt::ViewDecl(v) => {
                // Infer and register the view's schema so later queries
                // (and the rewriter) can resolve it.
                let ctx = SchemaCtx::new(&self.catalog);
                let (_, schema) = eds_lera::translate_view(v, &ctx)?;
                self.catalog.set_view_schema(
                    &v.name,
                    TableSchema {
                        name: v.name.clone(),
                        columns: schema.fields,
                    },
                );
            }
            _ => {}
        }
        Ok(())
    }

    /// Execute an `INSERT INTO ... VALUES` statement: value expressions
    /// are evaluated as constants (literals and constant constructor
    /// calls such as `MakeSet('a','b')`).
    pub fn execute_insert(&mut self, stmt: &eds_esql::InsertStmt) -> EngineResult<usize> {
        let ctx = SchemaCtx::new(&self.catalog);
        let mut rows = Vec::with_capacity(stmt.rows.len());
        for value_row in &stmt.rows {
            let mut row = Vec::with_capacity(value_row.len());
            for e in value_row {
                let scalar = eds_lera::translate_const_expr(e, &ctx)?;
                row.push(crate::eval::eval_const_scalar(&scalar, self)?);
            }
            rows.push(row);
        }
        let n = rows.len();
        for row in rows {
            self.insert(&stmt.table, row)?;
        }
        Ok(n)
    }

    /// Insert a row into a base table.
    pub fn insert(&mut self, table: &str, row: Row) -> EngineResult<()> {
        let key = table.to_ascii_uppercase();
        let rel = self
            .relations
            .get_mut(&key)
            .ok_or_else(|| EngineError::UnknownRelation(table.to_owned()))?;
        if row.len() != rel.schema.arity() {
            return Err(EngineError::ArityMismatch {
                table: table.to_owned(),
                expected: rel.schema.arity(),
                found: row.len(),
            });
        }
        rel.push(row);
        self.invalidate_columnar(&key);
        Ok(())
    }

    /// Insert many rows.
    pub fn insert_all(
        &mut self,
        table: &str,
        rows: impl IntoIterator<Item = Row>,
    ) -> EngineResult<()> {
        for row in rows {
            self.insert(table, row)?;
        }
        Ok(())
    }

    /// Create an object of the given type and return a reference value.
    pub fn create_object(&mut self, type_name: &str, value: Value) -> Value {
        Value::Object(self.new_oid(type_name, value))
    }

    /// Create an object, returning the raw OID.
    pub fn new_oid(&mut self, type_name: &str, value: Value) -> Oid {
        self.objects.create(type_name, value)
    }

    /// Stored relation by name.
    pub fn relation(&self, name: &str) -> Option<&Relation> {
        self.relations.get(&name.to_ascii_uppercase())
    }

    /// Mutable stored relation (for bulk loading in benchmarks). The
    /// columnar mirror is invalidated eagerly — the caller holds a
    /// mutable borrow and may change the rows.
    pub fn relation_mut(&mut self, name: &str) -> Option<&mut Relation> {
        let key = name.to_ascii_uppercase();
        self.invalidate_columnar(&key);
        self.relations.get_mut(&key)
    }

    /// Cardinality of a stored relation.
    pub fn cardinality(&self, name: &str) -> Option<usize> {
        self.relation(name).map(Relation::len)
    }

    /// Remove all rows from a table (schema preserved).
    pub fn truncate(&mut self, name: &str) -> EngineResult<()> {
        let key = name.to_ascii_uppercase();
        self.invalidate_columnar(&key);
        self.relations
            .get_mut(&key)
            .map(|r| r.rows.clear())
            .ok_or_else(|| EngineError::UnknownRelation(name.to_owned()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ddl_allocates_storage_and_view_schemas() {
        let mut db = Database::new();
        db.execute_ddl(
            "TABLE EDGE (Src : INT, Dst : INT);\n\
             CREATE VIEW LOOPS (Src) AS SELECT Src FROM EDGE WHERE Src = Dst;",
        )
        .unwrap();
        assert_eq!(db.cardinality("EDGE"), Some(0));
        let view_schema = db.catalog.relation("LOOPS").unwrap();
        assert_eq!(view_schema.columns.len(), 1);
        assert_eq!(view_schema.columns[0].name, "Src");
    }

    #[test]
    fn insert_checks_arity() {
        let mut db = Database::new();
        db.execute_ddl("TABLE EDGE (Src : INT, Dst : INT);")
            .unwrap();
        db.insert("EDGE", vec![1.into(), 2.into()]).unwrap();
        let err = db.insert("edge", vec![1.into()]).unwrap_err();
        assert!(matches!(err, EngineError::ArityMismatch { .. }));
        assert_eq!(db.cardinality("Edge"), Some(1));
    }

    #[test]
    fn unknown_table_insert_fails() {
        let mut db = Database::new();
        assert!(matches!(
            db.insert("NOPE", vec![]),
            Err(EngineError::UnknownRelation(_))
        ));
    }

    #[test]
    fn objects_shared_by_reference() {
        let mut db = Database::new();
        db.execute_ddl(
            "TYPE Person OBJECT TUPLE (Name : CHAR);\n\
             TABLE T (P : Person);",
        )
        .unwrap();
        let quinn = db.create_object("Person", Value::Tuple(vec![Value::str("Quinn")]));
        db.insert("T", vec![quinn.clone()]).unwrap();
        db.insert("T", vec![quinn.clone()]).unwrap();
        // Both rows reference the same object.
        let rel = db.relation("T").unwrap();
        assert_eq!(rel.rows[0], rel.rows[1]);
    }
}
