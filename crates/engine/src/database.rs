//! The database: catalog + object store + stored relations + functions.

use std::collections::HashMap;
use std::sync::{Arc, Mutex};

use eds_adt::{FunctionRegistry, ObjectStore, Oid, Value};
use eds_esql::{Catalog, Stmt, TableSchema};
use eds_lera::{Schema, SchemaCtx};

use crate::columnar::ColumnarRelation;
use crate::error::{EngineError, EngineResult};
use crate::relation::{Relation, Row};
use crate::stats::TableStats;

/// An in-memory database instance.
#[derive(Debug)]
pub struct Database {
    /// Installed schema.
    pub catalog: Catalog,
    /// Object store (identity-bearing data).
    pub objects: ObjectStore,
    /// ADT function registry (extensible by the database implementor).
    pub functions: FunctionRegistry,
    relations: HashMap<String, Relation>,
    /// Columnar mirrors of stored relations, built lazily on first
    /// scan. Every mutation path goes through methods of this struct
    /// (`relations` is private): row [`Database::insert`] maintains an
    /// existing mirror incrementally, while bulk/unstructured mutations
    /// ([`Database::relation_mut`], [`Database::truncate`]) invalidate
    /// the touched table's entry — and only that entry, so mirrors of
    /// unrelated tables survive. `None` records "not column-friendly"
    /// so an all-spill table is not re-scanned on every query.
    columnar: Mutex<HashMap<String, Option<Arc<ColumnarRelation>>>>,
    /// Per-table statistics sketches for the cost-guided rewriter (see
    /// [`crate::stats`]), cached with the same lifecycle as the columnar
    /// mirrors: built lazily by [`Database::table_stats`], maintained
    /// incrementally on [`Database::insert`], dropped on bulk mutation.
    stats: Mutex<HashMap<String, Arc<TableStats>>>,
}

impl Default for Database {
    fn default() -> Self {
        Self::new()
    }
}

impl Database {
    /// Empty database with built-in functions.
    pub fn new() -> Self {
        Database {
            catalog: Catalog::new(),
            objects: ObjectStore::new(),
            functions: FunctionRegistry::with_builtins(),
            relations: HashMap::new(),
            columnar: Mutex::new(HashMap::new()),
            stats: Mutex::new(HashMap::new()),
        }
    }

    /// Drop the cached columnar mirror and statistics of `key` (already
    /// uppercased), called from every path that can change the stored
    /// rows.
    fn invalidate_columnar(&mut self, key: &str) {
        self.columnar
            .get_mut()
            .expect("columnar cache poisoned")
            .remove(key);
        self.stats
            .get_mut()
            .expect("stats cache poisoned")
            .remove(key);
    }

    /// Columnar mirror of a stored base table, built on first use and
    /// cached until the table is mutated. `None` when the table does not
    /// exist or is not column-friendly (empty, or every attribute
    /// spills) — negative results are cached too.
    pub fn columnar(&self, name: &str) -> Option<Arc<ColumnarRelation>> {
        let key = name.to_ascii_uppercase();
        let mut cache = self.columnar.lock().expect("columnar cache poisoned");
        if let Some(entry) = cache.get(&key) {
            return entry.clone();
        }
        let built = self
            .relations
            .get(&key)
            .and_then(|rel| ColumnarRelation::build(rel).map(Arc::new));
        cache.insert(key, built.clone());
        built
    }

    /// Statistics sketches for a stored base table, built on first use
    /// and cached until the table is mutated. `None` when no such table
    /// exists (views and recursion variables have no stored rows).
    pub fn table_stats(&self, name: &str) -> Option<Arc<TableStats>> {
        let key = name.to_ascii_uppercase();
        let mut cache = self.stats.lock().expect("stats cache poisoned");
        if let Some(entry) = cache.get(&key) {
            return Some(entry.clone());
        }
        let built = Arc::new(TableStats::build(self.relations.get(&key)?));
        cache.insert(key, built.clone());
        Some(built)
    }

    /// Parse and install DDL from `src`; storage is allocated for tables,
    /// view schemas are inferred and registered, and `INSERT` statements
    /// are executed. Any query statements found are returned unexecuted.
    pub fn execute_ddl(&mut self, src: &str) -> EngineResult<Vec<Stmt>> {
        let stmts = eds_esql::parse_statements(src)?;
        let mut queries = Vec::new();
        for stmt in stmts {
            match stmt {
                Stmt::Query(_) => queries.push(stmt),
                Stmt::Insert(ins) => {
                    self.execute_insert(&ins)?;
                }
                ddl => self.install_stmt(&ddl)?,
            }
        }
        Ok(queries)
    }

    /// Install one DDL statement: catalog registration plus storage
    /// allocation (tables) or schema inference (views).
    pub fn install_stmt(&mut self, stmt: &Stmt) -> EngineResult<()> {
        self.catalog.install(stmt)?;
        match stmt {
            Stmt::TableDecl(t) => {
                let schema = self
                    .catalog
                    .table(&t.name)
                    .map(|s| Schema::new(s.columns.clone()))
                    .expect("just installed");
                let key = t.name.to_ascii_uppercase();
                self.relations.insert(key.clone(), Relation::empty(schema));
                self.invalidate_columnar(&key);
            }
            Stmt::ViewDecl(v) => {
                // Infer and register the view's schema so later queries
                // (and the rewriter) can resolve it.
                let ctx = SchemaCtx::new(&self.catalog);
                let (_, schema) = eds_lera::translate_view(v, &ctx)?;
                self.catalog.set_view_schema(
                    &v.name,
                    TableSchema {
                        name: v.name.clone(),
                        columns: schema.fields,
                    },
                );
            }
            _ => {}
        }
        Ok(())
    }

    /// Execute an `INSERT INTO ... VALUES` statement: value expressions
    /// are evaluated as constants (literals and constant constructor
    /// calls such as `MakeSet('a','b')`).
    pub fn execute_insert(&mut self, stmt: &eds_esql::InsertStmt) -> EngineResult<usize> {
        let ctx = SchemaCtx::new(&self.catalog);
        let mut rows = Vec::with_capacity(stmt.rows.len());
        for value_row in &stmt.rows {
            let mut row = Vec::with_capacity(value_row.len());
            for e in value_row {
                let scalar = eds_lera::translate_const_expr(e, &ctx)?;
                row.push(crate::eval::eval_const_scalar(&scalar, self)?);
            }
            rows.push(row);
        }
        let n = rows.len();
        for row in rows {
            self.insert(&stmt.table, row)?;
        }
        Ok(n)
    }

    /// Insert a row into a base table. A cached columnar mirror of the
    /// table is maintained incrementally — the new row's values are
    /// appended to the typed columns in place — instead of being thrown
    /// away. Only when a value does not fit its column's layout (or the
    /// cached entry is stale or negative) is the entry dropped so the
    /// next scan rebuilds from the rows.
    pub fn insert(&mut self, table: &str, row: Row) -> EngineResult<()> {
        let key = table.to_ascii_uppercase();
        let rel = self
            .relations
            .get_mut(&key)
            .ok_or_else(|| EngineError::UnknownRelation(table.to_owned()))?;
        if row.len() != rel.schema.arity() {
            return Err(EngineError::ArityMismatch {
                table: table.to_owned(),
                expected: rel.schema.arity(),
                found: row.len(),
            });
        }
        let prev_len = rel.len();
        rel.push(row);
        let appended = rel.rows.last().expect("just pushed").clone();
        let cache = self.columnar.get_mut().expect("columnar cache poisoned");
        if let Some(entry) = cache.get_mut(&key) {
            // A negative entry ("not column-friendly") is removed rather
            // than kept: the new row may make the table mirror-worthy.
            let maintained = match entry.as_mut() {
                Some(mirror) if mirror.len() == prev_len => {
                    Arc::make_mut(mirror).push_row(&appended)
                }
                _ => false,
            };
            if !maintained {
                cache.remove(&key);
            }
        }
        let stats = self.stats.get_mut().expect("stats cache poisoned");
        if let Some(entry) = stats.get_mut(&key) {
            if entry.card == prev_len as u64 {
                Arc::make_mut(entry).observe_row(&appended);
            } else {
                stats.remove(&key);
            }
        }
        Ok(())
    }

    /// Insert many rows.
    pub fn insert_all(
        &mut self,
        table: &str,
        rows: impl IntoIterator<Item = Row>,
    ) -> EngineResult<()> {
        for row in rows {
            self.insert(table, row)?;
        }
        Ok(())
    }

    /// Create an object of the given type and return a reference value.
    pub fn create_object(&mut self, type_name: &str, value: Value) -> Value {
        Value::Object(self.new_oid(type_name, value))
    }

    /// Create an object, returning the raw OID.
    pub fn new_oid(&mut self, type_name: &str, value: Value) -> Oid {
        self.objects.create(type_name, value)
    }

    /// Stored relation by name.
    pub fn relation(&self, name: &str) -> Option<&Relation> {
        self.relations.get(&name.to_ascii_uppercase())
    }

    /// Mutable stored relation (for bulk loading in benchmarks). The
    /// columnar mirror is invalidated eagerly — the caller holds a
    /// mutable borrow and may change the rows.
    pub fn relation_mut(&mut self, name: &str) -> Option<&mut Relation> {
        let key = name.to_ascii_uppercase();
        self.invalidate_columnar(&key);
        self.relations.get_mut(&key)
    }

    /// Cardinality of a stored relation.
    pub fn cardinality(&self, name: &str) -> Option<usize> {
        self.relation(name).map(Relation::len)
    }

    /// Remove all rows from a table (schema preserved).
    pub fn truncate(&mut self, name: &str) -> EngineResult<()> {
        let key = name.to_ascii_uppercase();
        self.invalidate_columnar(&key);
        self.relations
            .get_mut(&key)
            .map(|r| r.rows.clear())
            .ok_or_else(|| EngineError::UnknownRelation(name.to_owned()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ddl_allocates_storage_and_view_schemas() {
        let mut db = Database::new();
        db.execute_ddl(
            "TABLE EDGE (Src : INT, Dst : INT);\n\
             CREATE VIEW LOOPS (Src) AS SELECT Src FROM EDGE WHERE Src = Dst;",
        )
        .unwrap();
        assert_eq!(db.cardinality("EDGE"), Some(0));
        let view_schema = db.catalog.relation("LOOPS").unwrap();
        assert_eq!(view_schema.columns.len(), 1);
        assert_eq!(view_schema.columns[0].name, "Src");
    }

    #[test]
    fn insert_checks_arity() {
        let mut db = Database::new();
        db.execute_ddl("TABLE EDGE (Src : INT, Dst : INT);")
            .unwrap();
        db.insert("EDGE", vec![1.into(), 2.into()]).unwrap();
        let err = db.insert("edge", vec![1.into()]).unwrap_err();
        assert!(matches!(err, EngineError::ArityMismatch { .. }));
        assert_eq!(db.cardinality("Edge"), Some(1));
    }

    #[test]
    fn unknown_table_insert_fails() {
        let mut db = Database::new();
        assert!(matches!(
            db.insert("NOPE", vec![]),
            Err(EngineError::UnknownRelation(_))
        ));
    }

    #[test]
    fn unrelated_tables_mirror_survives_insert() {
        let mut db = Database::new();
        db.execute_ddl("TABLE A (X : INT);\nTABLE B (Y : INT);")
            .unwrap();
        db.insert("A", vec![1.into()]).unwrap();
        db.insert("B", vec![10.into()]).unwrap();
        let a_before = db.columnar("A").expect("A is column-friendly");
        db.insert("B", vec![20.into()]).unwrap();
        // Mutating B must not disturb A's cached mirror: same Arc, not a
        // rebuild and not a clone.
        let a_after = db.columnar("A").expect("A still mirrored");
        assert!(Arc::ptr_eq(&a_before, &a_after));
    }

    #[test]
    fn truncate_invalidates_only_its_own_mirror() {
        let mut db = Database::new();
        db.execute_ddl("TABLE A (X : INT);\nTABLE B (Y : INT);")
            .unwrap();
        db.insert("A", vec![1.into()]).unwrap();
        db.insert("B", vec![10.into()]).unwrap();
        let a_before = db.columnar("A").expect("A is column-friendly");
        let b_before = db.columnar("B").expect("B is column-friendly");
        db.truncate("B").unwrap();
        // Truncation must drop exactly the truncated table's mirror:
        // B rebuilds (empty), A keeps the very same Arc.
        let a_after = db.columnar("A").expect("A still mirrored");
        assert!(Arc::ptr_eq(&a_before, &a_after));
        // B's stale mirror is gone: whatever comes back now (possibly
        // nothing — empty tables may not qualify) is a fresh, empty one.
        if let Some(b_after) = db.columnar("B") {
            assert!(!Arc::ptr_eq(&b_before, &b_after));
            assert_eq!(b_after.len(), 0);
        }
    }

    #[test]
    fn insert_maintains_mirror_incrementally() {
        let mut db = Database::new();
        db.execute_ddl("TABLE C (X : INT, Y : INT);").unwrap();
        db.insert("C", vec![1.into(), Value::Null]).unwrap();
        // Column Y is all-NULL at build time, so it spills. An insert
        // that triggered a rebuild would re-type it as Int; incremental
        // maintenance keeps the existing layout — observable proof the
        // mirror was appended to, not rebuilt.
        let before = db.columnar("C").expect("X is typed");
        assert!(!before.column_is_typed(1));
        db.insert("C", vec![2.into(), 5.into()]).unwrap();
        let after = db.columnar("C").expect("mirror maintained");
        assert_eq!(after.len(), 2);
        assert!(!after.column_is_typed(1), "rebuild happened");
        assert_eq!(after.row(1), vec![Value::Int(2), Value::Int(5)]);
        // NULL appends extend the bitmap of a typed column.
        db.insert("C", vec![Value::Null, 7.into()]).unwrap();
        let third = db.columnar("C").expect("mirror maintained");
        assert_eq!(third.row(2), vec![Value::Null, Value::Int(7)]);
    }

    #[test]
    fn kind_mismatch_insert_drops_mirror() {
        let mut db = Database::new();
        db.execute_ddl("TABLE D (X : INT);").unwrap();
        db.insert("D", vec![1.into()]).unwrap();
        assert!(db.columnar("D").is_some());
        // The engine does not type-check row values against the schema,
        // so a Str can land in an INT column; the mirror must refuse the
        // append and fall back to a rebuild (which spills -> no mirror).
        db.insert("D", vec![Value::str("oops")]).unwrap();
        assert!(db.columnar("D").is_none());
        assert_eq!(db.cardinality("D"), Some(2));
    }

    #[test]
    fn insert_clears_negative_mirror_entry() {
        let mut db = Database::new();
        db.execute_ddl("TABLE E (X : INT);").unwrap();
        // Empty table: negative entry cached.
        assert!(db.columnar("E").is_none());
        db.insert("E", vec![3.into()]).unwrap();
        // The insert removed the negative entry, so the mirror can now
        // be built.
        let mirror = db.columnar("E").expect("rebuilt after negative entry");
        assert_eq!(mirror.row(0), vec![Value::Int(3)]);
    }

    #[test]
    fn table_stats_maintained_on_insert_dropped_on_truncate() {
        let mut db = Database::new();
        db.execute_ddl("TABLE S (K : INT, V : INT);").unwrap();
        for i in 0..10 {
            db.insert("S", vec![Value::Int(i), Value::Int(i % 3)])
                .unwrap();
        }
        let first = db.table_stats("S").expect("stored table");
        assert_eq!(first.card, 10);
        assert_eq!(first.columns[0].distinct(), 10.0);
        assert_eq!(first.columns[1].distinct(), 3.0);
        // Insert maintains the cached sketch in place (no rebuild).
        db.insert("S", vec![Value::Int(99), Value::Int(7)]).unwrap();
        let second = db.table_stats("S").expect("still cached");
        assert_eq!(second.card, 11);
        assert_eq!(second.columns[0].max, Some(99.0));
        assert_eq!(second.columns[1].distinct(), 4.0);
        // Truncate drops the entry; the rebuild sees an empty table.
        db.truncate("S").unwrap();
        let third = db.table_stats("S").expect("rebuilt");
        assert_eq!(third.card, 0);
        // Views have no stored rows, hence no stats.
        assert!(db.table_stats("NOPE").is_none());
    }

    #[test]
    fn objects_shared_by_reference() {
        let mut db = Database::new();
        db.execute_ddl(
            "TYPE Person OBJECT TUPLE (Name : CHAR);\n\
             TABLE T (P : Person);",
        )
        .unwrap();
        let quinn = db.create_object("Person", Value::Tuple(vec![Value::str("Quinn")]));
        db.insert("T", vec![quinn.clone()]).unwrap();
        db.insert("T", vec![quinn.clone()]).unwrap();
        // Both rows reference the same object.
        let rel = db.relation("T").unwrap();
        assert_eq!(rel.rows[0], rel.rows[1]);
    }
}
