//! Fixpoint evaluation: `fix(R, E(R))` computes the relation `R = E(R)`
//! (Section 3.2).
//!
//! Two strategies are provided. *Naive* re-evaluates the whole body each
//! round. *Semi-naive* differentiates the body: each recursive branch is
//! re-evaluated once per occurrence of the recursion variable, with that
//! occurrence bound to the delta of the previous round — the standard
//! optimization the Alexander/magic-sets transformation composes with.

use std::collections::HashSet;

use eds_lera::{infer_schema, Expr};

use crate::error::{EngineError, EngineResult};
use crate::eval::{eval_expr, Ctx};
use crate::relation::{Relation, SharedRow};

/// Fixpoint evaluation strategy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FixMode {
    /// Recompute `E(R)` in full each round.
    Naive,
    /// Differential evaluation per occurrence of the recursion variable.
    #[default]
    SemiNaive,
}

/// Fixpoint options.
#[derive(Debug, Clone, Copy)]
pub struct FixOptions {
    /// Strategy.
    pub mode: FixMode,
    /// Safety bound on rounds.
    pub max_iterations: usize,
}

impl Default for FixOptions {
    fn default() -> Self {
        FixOptions {
            mode: FixMode::SemiNaive,
            max_iterations: 100_000,
        }
    }
}

/// Evaluate `fix(name, body)`.
pub fn eval_fix(name: &str, body: &Expr, ctx: &mut Ctx<'_>) -> EngineResult<Relation> {
    match ctx.opts.fix.mode {
        FixMode::Naive => eval_fix_naive(name, body, ctx),
        FixMode::SemiNaive => eval_fix_seminaive(name, body, ctx),
    }
}

fn sorted_dedup(mut rows: Vec<SharedRow>) -> Vec<SharedRow> {
    rows.sort_unstable();
    rows.dedup();
    rows
}

/// Merge two sorted, individually deduplicated, mutually disjoint row
/// vectors into one sorted vector — O(n) instead of re-sorting the
/// accumulated `known` every round, which dominated deep fixpoints
/// (`known` only grows; the delta is usually small).
fn merge_sorted_disjoint(known: &[SharedRow], delta: &[SharedRow]) -> Vec<SharedRow> {
    let mut out = Vec::with_capacity(known.len() + delta.len());
    let (mut i, mut j) = (0, 0);
    while i < known.len() && j < delta.len() {
        if known[i] <= delta[j] {
            out.push(known[i].clone());
            i += 1;
        } else {
            out.push(delta[j].clone());
            j += 1;
        }
    }
    out.extend(known[i..].iter().cloned());
    out.extend(delta[j..].iter().cloned());
    out
}

fn eval_fix_naive(name: &str, body: &Expr, ctx: &mut Ctx<'_>) -> EngineResult<Relation> {
    let key = name.to_ascii_uppercase();
    let schema = {
        let sc = ctx.schema_ctx_for_fix();
        infer_schema(
            &Expr::Fix {
                name: name.to_owned(),
                body: Box::new(body.clone()),
            },
            &sc,
        )?
    };
    let mut known = Relation::empty(schema);
    let saved = ctx.bind_local(key.clone(), known.clone());

    let result = (|| {
        for _round in 0..ctx.opts.fix.max_iterations {
            ctx.stats.fix_iterations += 1;
            ctx.bind_local(key.clone(), known.clone());
            let new = eval_expr(body, ctx)?;
            let merged = sorted_dedup(known.rows.iter().cloned().chain(new.rows).collect());
            if merged == known.rows {
                return Ok(known);
            }
            known = Relation::from_shared(known.schema.clone(), merged);
        }
        Err(EngineError::FixpointDiverged {
            name: name.to_owned(),
            limit: ctx.opts.fix.max_iterations,
        })
    })();

    restore_local(ctx, &key, saved);
    result
}

fn eval_fix_seminaive(name: &str, body: &Expr, ctx: &mut Ctx<'_>) -> EngineResult<Relation> {
    let key = name.to_ascii_uppercase();
    let delta_key = format!("{key}#DELTA");

    // Split the body into branches (a union, or a single expression).
    let branches: Vec<&Expr> = match body {
        Expr::Union(items) => items.iter().collect(),
        other => vec![other],
    };
    let seed_branches: Vec<&Expr> = branches
        .iter()
        .copied()
        .filter(|b| !b.references(name))
        .collect();
    let rec_branches: Vec<&Expr> = branches
        .iter()
        .copied()
        .filter(|b| b.references(name))
        .collect();
    if seed_branches.is_empty() {
        // Least fixpoint from the empty relation: no seed means empty.
        let sc = ctx.schema_ctx_for_fix();
        let schema = infer_schema(
            &Expr::Fix {
                name: name.to_owned(),
                body: Box::new(body.clone()),
            },
            &sc,
        )?;
        return Ok(Relation::empty(schema));
    }

    // Seed: the non-recursive branches.
    let mut known: Option<Relation> = None;
    for b in &seed_branches {
        let r = eval_expr(b, ctx)?;
        match &mut known {
            None => known = Some(r),
            Some(acc) => acc.rows.extend(r.rows),
        }
    }
    let mut known = known.expect("non-empty seed branches");
    known.rows = sorted_dedup(std::mem::take(&mut known.rows));
    let mut delta = known.clone();

    // Pre-compute, per recursive branch, one variant per occurrence of
    // the recursion variable with that occurrence renamed to the delta.
    let variants: Vec<Expr> = rec_branches
        .iter()
        .flat_map(|b| {
            let occurrences = count_occurrences(b, name);
            (0..occurrences).map(|i| replace_nth_base(b, name, i, &delta_key))
        })
        .collect();

    let saved_known = ctx.bind_local(key.clone(), known.clone());
    let saved_delta = ctx.bind_local(delta_key.clone(), delta.clone());

    // Hash membership for the `fresh - known` difference (rows hash
    // through the Arc to their values); `known.rows` itself stays a
    // sorted vector so the final result is canonical.
    let mut known_set: HashSet<SharedRow> = known.rows.iter().cloned().collect();

    let result = (|| {
        for _round in 0..ctx.opts.fix.max_iterations {
            ctx.stats.fix_iterations += 1;
            ctx.bind_local(key.clone(), known.clone());
            ctx.bind_local(delta_key.clone(), delta.clone());

            let mut fresh: Vec<SharedRow> = Vec::new();
            for variant in &variants {
                let r = eval_expr(variant, ctx)?;
                fresh.extend(r.rows);
            }
            let fresh = sorted_dedup(fresh);
            // delta = fresh - known
            let new_delta: Vec<SharedRow> = fresh
                .into_iter()
                .filter(|r| !known_set.contains(r))
                .collect();
            if new_delta.is_empty() {
                return Ok(known);
            }
            known_set.extend(new_delta.iter().cloned());
            // `known.rows` and `new_delta` are each sorted + deduplicated
            // and (by the `known_set` filter) disjoint, so a linear merge
            // equals the old sort-the-union exactly.
            let merged = merge_sorted_disjoint(&known.rows, &new_delta);
            known = Relation::from_shared(known.schema.clone(), merged);
            delta = Relation::from_shared(known.schema.clone(), new_delta);
        }
        Err(EngineError::FixpointDiverged {
            name: name.to_owned(),
            limit: ctx.opts.fix.max_iterations,
        })
    })();

    restore_local(ctx, &key, saved_known);
    restore_local(ctx, &delta_key, saved_delta);
    result
}

fn restore_local(ctx: &mut Ctx<'_>, key: &str, saved: Option<Relation>) {
    match saved {
        Some(rel) => {
            ctx.bind_local(key.to_owned(), rel);
        }
        None => {
            ctx.unbind_local(key);
        }
    }
}

/// Number of `Base(name)` occurrences in an expression (not descending
/// into shadowing inner `fix` operators with the same variable).
pub fn count_occurrences(e: &Expr, name: &str) -> usize {
    match e {
        Expr::Base(n) => usize::from(n.eq_ignore_ascii_case(name)),
        Expr::Fix { name: inner, .. } if inner.eq_ignore_ascii_case(name) => 0,
        other => other
            .children()
            .iter()
            .map(|c| count_occurrences(c, name))
            .sum(),
    }
}

/// Replace the `n`-th occurrence (0-based, pre-order) of `Base(name)`
/// with `Base(replacement)`.
pub fn replace_nth_base(e: &Expr, name: &str, n: usize, replacement: &str) -> Expr {
    fn walk(e: &Expr, name: &str, counter: &mut usize, n: usize, replacement: &str) -> Expr {
        match e {
            Expr::Base(b) if b.eq_ignore_ascii_case(name) => {
                let hit = *counter == n;
                *counter += 1;
                if hit {
                    Expr::Base(replacement.to_owned())
                } else {
                    e.clone()
                }
            }
            Expr::Fix { name: inner, .. } if inner.eq_ignore_ascii_case(name) => e.clone(),
            Expr::Base(_) => e.clone(),
            Expr::Filter { input, pred } => Expr::Filter {
                input: Box::new(walk(input, name, counter, n, replacement)),
                pred: pred.clone(),
            },
            Expr::Project { input, exprs } => Expr::Project {
                input: Box::new(walk(input, name, counter, n, replacement)),
                exprs: exprs.clone(),
            },
            Expr::Join { left, right, pred } => Expr::Join {
                left: Box::new(walk(left, name, counter, n, replacement)),
                right: Box::new(walk(right, name, counter, n, replacement)),
                pred: pred.clone(),
            },
            Expr::Union(items) => Expr::Union(
                items
                    .iter()
                    .map(|i| walk(i, name, counter, n, replacement))
                    .collect(),
            ),
            Expr::Difference(a, b) => Expr::Difference(
                Box::new(walk(a, name, counter, n, replacement)),
                Box::new(walk(b, name, counter, n, replacement)),
            ),
            Expr::Intersect(a, b) => Expr::Intersect(
                Box::new(walk(a, name, counter, n, replacement)),
                Box::new(walk(b, name, counter, n, replacement)),
            ),
            Expr::Search { inputs, pred, proj } => Expr::Search {
                inputs: inputs
                    .iter()
                    .map(|i| walk(i, name, counter, n, replacement))
                    .collect(),
                pred: pred.clone(),
                proj: proj.clone(),
            },
            Expr::Fix { name: inner, body } => Expr::Fix {
                name: inner.clone(),
                body: Box::new(walk(body, name, counter, n, replacement)),
            },
            Expr::Nest {
                input,
                group,
                nested,
                kind,
            } => Expr::Nest {
                input: Box::new(walk(input, name, counter, n, replacement)),
                group: group.clone(),
                nested: nested.clone(),
                kind: *kind,
            },
            Expr::Unnest { input, attr } => Expr::Unnest {
                input: Box::new(walk(input, name, counter, n, replacement)),
                attr: *attr,
            },
            Expr::Dedup(input) => Expr::Dedup(Box::new(walk(input, name, counter, n, replacement))),
        }
    }
    let mut counter = 0;
    walk(e, name, &mut counter, n, replacement)
}

impl Ctx<'_> {
    /// Schema context including fixpoint locals (used by eval_fix before
    /// the new variable is bound).
    pub(crate) fn schema_ctx_for_fix(&self) -> eds_lera::SchemaCtx<'_> {
        let mut sc = eds_lera::SchemaCtx::new(&self.db.catalog);
        for (name, rel) in &self.locals {
            sc = sc.with_local(name, (*rel.schema).clone());
        }
        sc
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eds_lera::Scalar;

    #[test]
    fn occurrence_counting_and_replacement() {
        let e = Expr::search(
            vec![Expr::base("R"), Expr::base("S"), Expr::base("R")],
            Scalar::true_(),
            vec![Scalar::attr(1, 1)],
        );
        assert_eq!(count_occurrences(&e, "R"), 2);
        assert_eq!(count_occurrences(&e, "S"), 1);
        let replaced = replace_nth_base(&e, "R", 1, "DELTA");
        assert_eq!(replaced.base_relations(), vec!["R", "S", "DELTA"]);
    }

    #[test]
    fn shadowed_fix_not_descended() {
        let inner_fix = Expr::Fix {
            name: "R".into(),
            body: Box::new(Expr::base("R")),
        };
        assert_eq!(count_occurrences(&inner_fix, "R"), 0);
    }
}
