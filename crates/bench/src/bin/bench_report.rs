//! Assemble `BENCH_rewrite.json` from the bench harness's TSV dumps.
//!
//! Inputs:
//! * `crates/bench/baselines/before/<group>.tsv` — medians recorded with
//!   the pre-overhaul kernel (committed, regenerated only when a PR
//!   intentionally re-baselines);
//! * `target/bench-tsv/<group>.tsv` — medians from the current tree,
//!   written by `cargo bench -p eds-bench --bench <group>`.
//!
//! Output: `BENCH_rewrite.json` at the workspace root with per-entry
//! before/after medians and speedups, plus per-group medians. Entries are
//! classified as `rewrite` (matcher / rewrite-phase measurements, the
//! kernel's hot path) or `exec` (plan execution, expected to be flat:
//! rewriting produces byte-identical plans).
//!
//! Usage: `cargo run -p eds-bench --bin bench_report` after running the
//! four groups below with `cargo bench`.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::fs;
use std::path::{Path, PathBuf};

const GROUPS: &[&str] = &["matching", "merging", "pushdown", "simplify"];

/// An entry measures the rewrite kernel itself (rather than executing the
/// rewritten plan) when the whole group is matcher work or the id names a
/// rewrite phase.
fn is_rewrite_entry(group: &str, id: &str) -> bool {
    group == "matching" || id.contains("rewrite")
}

fn workspace_root() -> PathBuf {
    let mut dir = std::env::current_dir().expect("cwd");
    loop {
        if dir.join("Cargo.lock").exists() {
            return dir;
        }
        if !dir.pop() {
            panic!("no workspace root (Cargo.lock) above the current directory");
        }
    }
}

fn read_tsv(path: &Path) -> BTreeMap<String, f64> {
    let text =
        fs::read_to_string(path).unwrap_or_else(|e| panic!("cannot read {}: {e}", path.display()));
    let mut out = BTreeMap::new();
    for line in text.lines() {
        let mut cols = line.split('\t');
        let (Some(id), Some(ns)) = (cols.next(), cols.next()) else {
            continue;
        };
        let ns: f64 = ns
            .trim()
            .parse()
            .unwrap_or_else(|e| panic!("bad median in {} for {id}: {e}", path.display()));
        out.insert(id.to_owned(), ns);
    }
    out
}

fn median(mut xs: Vec<f64>) -> f64 {
    assert!(!xs.is_empty(), "median of empty set");
    xs.sort_by(|a, b| a.partial_cmp(b).expect("no NaNs"));
    let n = xs.len();
    if n % 2 == 1 {
        xs[n / 2]
    } else {
        (xs[n / 2 - 1] + xs[n / 2]) / 2.0
    }
}

fn main() {
    let root = workspace_root();
    let before_dir = root.join("crates/bench/baselines/before");
    let after_dir = root.join("target/bench-tsv");

    let mut json = String::from("{\n");
    json.push_str("  \"unit\": \"ns/iter (median)\",\n");
    json.push_str(
        "  \"note\": \"before = pre-overhaul kernel baseline (committed); after = current tree. \
         rewrite entries exercise the rewrite kernel; exec entries run the rewritten plan and \
         are expected flat since rewriting yields identical plans.\",\n",
    );
    json.push_str("  \"groups\": {\n");

    let mut all_rewrite_speedups: Vec<f64> = Vec::new();
    for (gi, group) in GROUPS.iter().enumerate() {
        let before = read_tsv(&before_dir.join(format!("{group}.tsv")));
        let after = read_tsv(&after_dir.join(format!("{group}.tsv")));

        let mut entries = String::new();
        let mut rewrite_speedups = Vec::new();
        let mut all_speedups = Vec::new();
        for (i, (id, after_ns)) in after.iter().enumerate() {
            let Some(before_ns) = before.get(id) else {
                eprintln!("warning: {group}/{id} has no 'before' baseline, skipping");
                continue;
            };
            let speedup = before_ns / after_ns;
            let kind = if is_rewrite_entry(group, id) {
                rewrite_speedups.push(speedup);
                "rewrite"
            } else {
                "exec"
            };
            all_speedups.push(speedup);
            let _ = write!(
                entries,
                "{}        {{\"id\": \"{id}\", \"kind\": \"{kind}\", \"before_ns\": {before_ns:.1}, \
                 \"after_ns\": {after_ns:.1}, \"speedup\": {speedup:.2}}}",
                if i == 0 { "" } else { ",\n" },
            );
        }
        all_rewrite_speedups.extend(rewrite_speedups.iter().copied());

        let _ = write!(
            json,
            "    \"{group}\": {{\n      \"entries\": [\n{entries}\n      ],\n      \
             \"median_speedup_rewrite\": {:.2},\n      \"median_speedup_all\": {:.2}\n    }}{}\n",
            median(rewrite_speedups),
            median(all_speedups),
            if gi + 1 == GROUPS.len() { "" } else { "," },
        );
    }

    let _ = write!(
        json,
        "  }},\n  \"median_speedup_rewrite_overall\": {:.2}\n}}\n",
        median(all_rewrite_speedups)
    );

    let out = root.join("BENCH_rewrite.json");
    fs::write(&out, &json).unwrap_or_else(|e| panic!("cannot write {}: {e}", out.display()));
    println!("wrote {}", out.display());
    print!("{json}");
}
