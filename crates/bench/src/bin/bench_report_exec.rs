//! Assemble `BENCH_exec.json` from the executor bench's TSV dumps.
//!
//! Inputs:
//! * `crates/bench/baselines/before/exec.tsv` — medians recorded with the
//!   seed tree-walking executor (ids `<workload>/seq`; committed,
//!   regenerated only when a PR intentionally re-baselines). The
//!   `scan_*` workloads arrived with the columnar layer, so their
//!   baseline is the row-at-a-time path (`EDS_COLUMNAR=0`) instead;
//! * `target/bench-tsv/exec.tsv` — medians from the current tree, written
//!   by `cargo bench -p eds-bench --bench exec` (ids `<workload>/p1` and
//!   `<workload>/p4` for `EvalOptions::parallelism` 1 and 4).
//!
//! Output: `BENCH_exec.json` at the workspace root with per-workload
//! before/after medians and speedups at both parallelism levels, plus
//! median speedups over the exec entries. The `repeat_rewrite` workload
//! measures the rewrite-output plan cache (kind `rewrite`) and is excluded
//! from the exec medians.
//!
//! Usage: `cargo bench -p eds-bench --bench exec && cargo run -p eds-bench
//! --bin bench_report_exec`. With `--check-scan-scaling` the run also
//! fails (exit 1) if any `scan*` workload scales *backwards* — a
//! `speedup_p4` meaningfully below its `speedup_p1` means adding
//! workers made the scan slower, which the morsel scheduler's worker
//! policy is supposed to make impossible (it falls back to one worker
//! rather than over-partitioning). Since p1 and p4 are measured
//! independently even on hosts whose worker policy clamps both to the
//! same single-worker code path, the check applies a 10% tolerance so
//! same-code timing noise cannot fail it.
//!
//! The `em_*` workloads measure prepared-statement amortization
//! (kind `execute_many`): `<id>/seq` is the unprepared per-query path
//! (full parse + rewrite + bridge per execution, plan cache warm) and
//! `<id>/p1` is `PreparedStmt::execute` cycling the same binds. They
//! are excluded from the exec medians and summarized separately under
//! `median_speedup_execute_many`. With `--check-prepared-floor` the
//! run fails (exit 1) when any workload listed in
//! `crates/bench/baselines/prepared_floors.tsv` falls below its
//! committed minimum speedup, or when fewer than two `execute_many`
//! workloads are present at all. When the current run's TSV carries a
//! fresh `em_*/seq` median (an `EDS_EXEC_BASELINE=1` run), it takes
//! precedence over the committed one so that gate compares two
//! medians from the same host.
//!
//! The `ol_*` workloads measure cost-guided plan choice (kind
//! `opt_level`): `<id>/seq` is the `OptLevel::Simple` plan (pure
//! saturation) and `<id>/p1`/`<id>/p4` the `OptLevel::Full` plan the
//! statistics-backed exploration picked, both on the same engine
//! configuration. They are excluded from the exec medians and
//! summarized under `median_speedup_opt_level`. With
//! `--check-opt-level-floor` the run fails (exit 1) when any workload
//! listed in `crates/bench/baselines/opt_level_floors.tsv` falls below
//! its committed minimum speedup; fresh same-host `ol_*/seq` medians
//! take precedence over committed ones, like the `em_*` gate.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::fs;
use std::path::{Path, PathBuf};

fn workspace_root() -> PathBuf {
    let mut dir = std::env::current_dir().expect("cwd");
    loop {
        if dir.join("Cargo.lock").exists() {
            return dir;
        }
        if !dir.pop() {
            panic!("no workspace root (Cargo.lock) above the current directory");
        }
    }
}

fn read_tsv(path: &Path) -> BTreeMap<String, f64> {
    let text =
        fs::read_to_string(path).unwrap_or_else(|e| panic!("cannot read {}: {e}", path.display()));
    let mut out = BTreeMap::new();
    for line in text.lines() {
        let mut cols = line.split('\t');
        let (Some(id), Some(ns)) = (cols.next(), cols.next()) else {
            continue;
        };
        let ns: f64 = ns
            .trim()
            .parse()
            .unwrap_or_else(|e| panic!("bad median in {} for {id}: {e}", path.display()));
        out.insert(id.to_owned(), ns);
    }
    out
}

fn median(mut xs: Vec<f64>) -> f64 {
    assert!(!xs.is_empty(), "median of empty set");
    xs.sort_by(|a, b| a.partial_cmp(b).expect("no NaNs"));
    let n = xs.len();
    if n % 2 == 1 {
        xs[n / 2]
    } else {
        (xs[n / 2 - 1] + xs[n / 2]) / 2.0
    }
}

/// Same-code noise allowance for the scan-scaling check: p1 and p4 are
/// independent measurements, and on a single-worker host they time the
/// identical computation, so only a >10% regression counts.
const SCAN_SCALING_TOLERANCE: f64 = 0.9;

fn main() {
    let check_scan_scaling = std::env::args().any(|a| a == "--check-scan-scaling");
    let check_prepared_floor = std::env::args().any(|a| a == "--check-prepared-floor");
    let check_opt_level_floor = std::env::args().any(|a| a == "--check-opt-level-floor");
    let root = workspace_root();
    let before = read_tsv(&root.join("crates/bench/baselines/before/exec.tsv"));
    let after = read_tsv(&root.join("target/bench-tsv/exec.tsv"));
    let mut scan_violations: Vec<String> = Vec::new();
    let mut prepared_speedups: BTreeMap<String, f64> = BTreeMap::new();
    let mut opt_level_speedups: BTreeMap<String, f64> = BTreeMap::new();

    // Workloads in baseline order: `<workload>/seq` in the before file.
    let workloads: Vec<String> = before
        .keys()
        .filter_map(|id| id.strip_suffix("/seq").map(str::to_owned))
        .collect();

    let mut entries = String::new();
    let mut speedups_p1: Vec<f64> = Vec::new();
    let mut speedups_p4: Vec<f64> = Vec::new();
    let mut first = true;
    for w in &workloads {
        // For the em_* workloads an `EDS_EXEC_BASELINE=1` run records a
        // fresh `<id>/seq` alongside `<id>/p1`; prefer it over the
        // committed number so the floor gate compares two medians from
        // the *same host* (CI runners are not the baseline machine).
        let before_ns = if w.starts_with("em_") || w.starts_with("ol_") {
            *after
                .get(&format!("{w}/seq"))
                .unwrap_or(&before[&format!("{w}/seq")])
        } else {
            before[&format!("{w}/seq")]
        };
        let Some(&p1) = after.get(&format!("{w}/p1")) else {
            eprintln!("warning: {w}/p1 missing from current run, skipping");
            continue;
        };
        let kind = if w == "repeat_rewrite" {
            "rewrite"
        } else if w.starts_with("em_") {
            "execute_many"
        } else if w.starts_with("ol_") {
            "opt_level"
        } else {
            "exec"
        };
        let s1 = before_ns / p1;
        if kind == "execute_many" {
            prepared_speedups.insert(w.clone(), s1);
        }
        if kind == "opt_level" {
            opt_level_speedups.insert(w.clone(), s1);
        }
        if !first {
            entries.push_str(",\n");
        }
        first = false;
        match after.get(&format!("{w}/p4")) {
            Some(&p4) => {
                let s4 = before_ns / p4;
                if kind == "exec" {
                    speedups_p1.push(s1);
                    speedups_p4.push(s4);
                }
                if w.starts_with("scan") && s4 < s1 * SCAN_SCALING_TOLERANCE {
                    scan_violations.push(format!(
                        "{w}: speedup_p4 {s4:.2} < {:.0}% of speedup_p1 {s1:.2}",
                        SCAN_SCALING_TOLERANCE * 100.0
                    ));
                }
                let _ = write!(
                    entries,
                    "    {{\"id\": \"{w}\", \"kind\": \"{kind}\", \"before_ns\": {before_ns:.1}, \
                     \"after_p1_ns\": {p1:.1}, \"after_p4_ns\": {p4:.1}, \
                     \"speedup_p1\": {s1:.2}, \"speedup_p4\": {s4:.2}}}"
                );
            }
            None => {
                // The plan-cache and prepared-statement workloads are
                // parallelism-independent and only measured once.
                if kind == "exec" {
                    speedups_p1.push(s1);
                }
                let _ = write!(
                    entries,
                    "    {{\"id\": \"{w}\", \"kind\": \"{kind}\", \"before_ns\": {before_ns:.1}, \
                     \"after_p1_ns\": {p1:.1}, \"speedup_p1\": {s1:.2}}}"
                );
            }
        }
    }

    let mut json = String::from("{\n");
    json.push_str("  \"unit\": \"ns/iter (median)\",\n");
    json.push_str(
        "  \"note\": \"before = seed tree-walking executor (committed baseline, sequential), \
         except the scan_* workloads, introduced with the columnar layer, whose baseline is the \
         row-at-a-time executor (EDS_COLUMNAR=0) on the same tree; after = overhauled executor \
         at EvalOptions.parallelism 1 and 4. Every configuration is asserted byte-identical to \
         the reference executor before timing. repeat_rewrite measures the rewrite-output plan \
         cache and the em_* workloads measure prepared-statement amortization (before = \
         unprepared per-query path on the same tree, after = PreparedStmt::execute cycling the \
         same binds); the ol_* workloads measure cost-guided plan choice (before = the \
         OptLevel::Simple plan, after = the OptLevel::Full plan on the same engine \
         configuration); all three kinds are excluded from the exec medians.\",\n",
    );
    let _ = write!(json, "  \"entries\": [\n{entries}\n  ]");
    // An `EDS_EXEC_ONLY=em` run measures only the execute_many suite, so
    // the exec medians may have nothing to summarize.
    if !speedups_p1.is_empty() {
        let _ = write!(
            json,
            ",\n  \"median_speedup_exec_p1\": {:.2}",
            median(speedups_p1)
        );
    }
    if !speedups_p4.is_empty() {
        let _ = write!(
            json,
            ",\n  \"median_speedup_exec_p4\": {:.2}",
            median(speedups_p4)
        );
    }
    if !prepared_speedups.is_empty() {
        let _ = write!(
            json,
            ",\n  \"median_speedup_execute_many\": {:.2}",
            median(prepared_speedups.values().copied().collect())
        );
    }
    if !opt_level_speedups.is_empty() {
        let _ = write!(
            json,
            ",\n  \"median_speedup_opt_level\": {:.2}",
            median(opt_level_speedups.values().copied().collect())
        );
    }
    json.push_str("\n}\n");

    let out = root.join("BENCH_exec.json");
    fs::write(&out, &json).unwrap_or_else(|e| panic!("cannot write {}: {e}", out.display()));
    println!("wrote {}", out.display());
    print!("{json}");

    if check_scan_scaling && !scan_violations.is_empty() {
        eprintln!("scan workloads scaled backwards with more workers:");
        for v in &scan_violations {
            eprintln!("  {v}");
        }
        std::process::exit(1);
    }

    if check_prepared_floor {
        let mut floor_violations: Vec<String> = Vec::new();
        if prepared_speedups.len() < 2 {
            floor_violations.push(format!(
                "only {} execute_many workload(s) measured, need at least 2",
                prepared_speedups.len()
            ));
        }
        let floors = read_tsv(&root.join("crates/bench/baselines/prepared_floors.tsv"));
        for (id, floor) in &floors {
            match prepared_speedups.get(id) {
                None => floor_violations.push(format!("{id}: not measured (floor {floor:.1}x)")),
                Some(&s) if s < *floor => {
                    floor_violations.push(format!("{id}: speedup {s:.2}x below floor {floor:.1}x"));
                }
                Some(_) => {}
            }
        }
        if !floor_violations.is_empty() {
            eprintln!("prepared-statement amortization below its committed floor:");
            for v in &floor_violations {
                eprintln!("  {v}");
            }
            std::process::exit(1);
        }
    }

    if check_opt_level_floor {
        let mut floor_violations: Vec<String> = Vec::new();
        let floors = read_tsv(&root.join("crates/bench/baselines/opt_level_floors.tsv"));
        if floors.is_empty() {
            floor_violations.push("opt_level_floors.tsv declares no floors".to_owned());
        }
        for (id, floor) in &floors {
            match opt_level_speedups.get(id) {
                None => floor_violations.push(format!("{id}: not measured (floor {floor:.1}x)")),
                Some(&s) if s < *floor => {
                    floor_violations.push(format!("{id}: speedup {s:.2}x below floor {floor:.1}x"));
                }
                Some(_) => {}
            }
        }
        if !floor_violations.is_empty() {
            eprintln!("cost-guided plan choice below its committed floor:");
            for v in &floor_violations {
                eprintln!("  {v}");
            }
            std::process::exit(1);
        }
    }
}
