//! Fixed-seed semantic-verification smoke for CI's main matrix.
//!
//! Runs the built-in knowledge base through the bounded equivalence
//! prover and the differential fuzzer once per committed seed
//! (`verify/seeds.txt` at the workspace root; the default seed when the
//! file is absent), printing the per-pass summary and wall clock. Any
//! EDS030 refutation exits 1 — a semantically unsound builtin rule must
//! never ship. The timing line keeps the verify tier honest: a
//! pathological slowdown shows up here before it stalls the main CI
//! matrix.
//!
//! Usage: `cargo run -p eds-bench --bin verify_smoke` from anywhere in
//! the workspace. Reproduce a failing pass locally with
//! `eds-lint --verify --seed <seed>`.

use std::time::Instant;

use eds_core::verify::DEFAULT_SEED;
use eds_core::{Dbms, VerifyOptions};

fn seeds() -> Vec<u64> {
    let mut dir = std::env::current_dir().expect("cwd");
    let path = loop {
        if dir.join("Cargo.lock").exists() {
            break dir.join("verify/seeds.txt");
        }
        assert!(dir.pop(), "no workspace root above the current directory");
    };
    let Ok(text) = std::fs::read_to_string(&path) else {
        return vec![DEFAULT_SEED];
    };
    let parsed: Vec<u64> = text
        .lines()
        .filter_map(|l| {
            let l = l.split('#').next().unwrap_or("").trim();
            if l.is_empty() {
                return None;
            }
            Some(
                match l.strip_prefix("0x").or_else(|| l.strip_prefix("0X")) {
                    Some(hex) => u64::from_str_radix(hex, 16)
                        .unwrap_or_else(|e| panic!("bad seed {l:?} in {}: {e}", path.display())),
                    None => l
                        .parse()
                        .unwrap_or_else(|e| panic!("bad seed {l:?} in {}: {e}", path.display())),
                },
            )
        })
        .collect();
    assert!(!parsed.is_empty(), "{} lists no seeds", path.display());
    parsed
}

fn main() {
    let dbms = Dbms::new().expect("built-in rules must load");
    let mut refuted = false;
    for (i, seed) in seeds().into_iter().enumerate() {
        let opts = VerifyOptions {
            seed,
            // The prover is seed-independent; one pass covers it.
            prove: i == 0,
            ..VerifyOptions::default()
        };
        let t = Instant::now();
        let report = dbms.verify_with(&opts);
        let ms = t.elapsed().as_secs_f64() * 1e3;
        println!("seed {seed:#x}: {} ({ms:.0} ms)", report.summary());
        for d in report.diagnostics.iter().filter(|d| d.is_error()) {
            eprintln!("{d}");
            refuted = true;
        }
    }
    if refuted {
        eprintln!("verify_smoke: builtin KB refuted; replay with eds-lint --verify --seed <seed>");
        std::process::exit(1);
    }
}
