//! Same-host smoke gate for cost-guided rewriting — the CI leg behind
//! the `EDS_OPT_LEVEL` matrix. Everything here compares two
//! measurements taken back to back on the *same* machine, so the gate
//! is meaningful on any runner (committed nanoseconds from another host
//! are never consulted; those live in `BENCH_exec.json` and are gated
//! by `bench_report_exec --check-opt-level-floor` on baseline
//! re-records).
//!
//! Three checks, any failure exits 1:
//!
//! 1. **Exploration wins its floors** — for each `opt_level` workload,
//!    the `OptLevel::Full` plan must beat the `OptLevel::Simple` plan
//!    in measured execution by at least the factor committed in
//!    `crates/bench/baselines/opt_level_floors.tsv` (the join-order
//!    workload's floor is 1.5x), and the exploration must have stayed
//!    within its budget (`budget_exhausted` unset, candidate count
//!    under the cap).
//! 2. **Full never regresses the exec workloads** — on every
//!    `exec_workloads` entry, either Full picks the same plan as
//!    Simple, or its pick must not run measurably slower (>25%
//!    tolerance for timing noise).
//! 3. **None cuts prepare time on trivial statements** — rewriting a
//!    point scan at `OptLevel::None` must be faster than at `Simple`,
//!    since it skips the rule kernel entirely.

use std::time::Instant;

use eds_bench::{exec_workloads, opt_level_workloads, simple_table};
use eds_core::{Dbms, OptLevel, Prepared};

/// Median wall-clock nanoseconds of `iters` runs of `f`.
fn median_ns(iters: usize, mut f: impl FnMut()) -> f64 {
    let mut samples: Vec<f64> = (0..iters)
        .map(|_| {
            let t = Instant::now();
            f();
            t.elapsed().as_nanos() as f64
        })
        .collect();
    samples.sort_by(|a, b| a.partial_cmp(b).expect("no NaNs"));
    samples[samples.len() / 2]
}

fn read_floors() -> Vec<(String, f64)> {
    let path = {
        let mut dir = std::env::current_dir().expect("cwd");
        loop {
            if dir.join("Cargo.lock").exists() {
                break dir.join("crates/bench/baselines/opt_level_floors.tsv");
            }
            assert!(dir.pop(), "no workspace root above the current directory");
        }
    };
    std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("cannot read {}: {e}", path.display()))
        .lines()
        .filter_map(|l| {
            let mut cols = l.split('\t');
            Some((cols.next()?.to_owned(), cols.next()?.trim().parse().ok()?))
        })
        .collect()
}

fn plans_at_levels(
    dbms: &mut Dbms,
    prepared: &Prepared,
) -> (eds_core::RewriteOutcome, eds_core::RewriteOutcome) {
    dbms.set_opt_level(OptLevel::Simple);
    let simple = dbms.rewrite_uncached(prepared).unwrap();
    dbms.set_opt_level(OptLevel::Full);
    let full = dbms.rewrite_uncached(prepared).unwrap();
    (simple, full)
}

fn main() {
    let mut failures: Vec<String> = Vec::new();

    // 1. The opt_level workloads hold their committed floors.
    let floors = read_floors();
    for (id, mut dbms, sql) in opt_level_workloads() {
        let prepared = dbms.prepare(&sql).unwrap();
        let (simple, full) = plans_at_levels(&mut dbms, &prepared);
        let ex = full.exploration.expect("Full reports exploration");
        if full.budget_exhausted {
            failures.push(format!("{id}: exploration exhausted a block budget"));
        }
        let simple_ns = median_ns(7, || {
            dbms.run_expr(&simple.expr).unwrap();
        });
        let full_ns = median_ns(7, || {
            dbms.run_expr(&full.expr).unwrap();
        });
        let speedup = simple_ns / full_ns;
        let floor = floors
            .iter()
            .find(|(f, _)| f == id)
            .map_or_else(|| panic!("{id} has no committed floor"), |(_, v)| *v);
        println!(
            "{id}: simple {simple_ns:.0} ns, full {full_ns:.0} ns, speedup {speedup:.2}x \
             (floor {floor:.1}x, considered {} candidates, est. {:.0} vs runner-up {:.0})",
            ex.considered,
            ex.chosen_cost,
            ex.runner_up_cost.unwrap_or(f64::NAN),
        );
        if speedup < floor {
            failures.push(format!(
                "{id}: Full speedup {speedup:.2}x below committed floor {floor:.1}x"
            ));
        }
    }

    // 2. Full never makes an exec workload measurably slower.
    for (id, mut dbms, sql) in exec_workloads() {
        let prepared = dbms.prepare(&sql).unwrap();
        let (simple, full) = plans_at_levels(&mut dbms, &prepared);
        if simple.expr == full.expr {
            continue;
        }
        let simple_ns = median_ns(5, || {
            dbms.run_expr(&simple.expr).unwrap();
        });
        let full_ns = median_ns(5, || {
            dbms.run_expr(&full.expr).unwrap();
        });
        println!(
            "{id}: Full chose a different plan — simple {simple_ns:.0} ns, full {full_ns:.0} ns"
        );
        if full_ns > simple_ns * 1.25 {
            failures.push(format!(
                "{id}: Full's plan is {:.2}x slower than Simple's",
                full_ns / simple_ns
            ));
        }
    }

    // 3. None skips the rule kernel on trivial statements.
    {
        let mut dbms = simple_table(100);
        let prepared = dbms.prepare("SELECT Y FROM T WHERE X = 42 ;").unwrap();
        dbms.set_opt_level(OptLevel::Simple);
        let simple_ns = median_ns(25, || {
            dbms.rewrite_uncached(&prepared).unwrap();
        });
        dbms.set_opt_level(OptLevel::None);
        let none = dbms.rewrite_uncached(&prepared).unwrap();
        if none.stats.condition_checks != 0 {
            failures.push(format!(
                "trivial scan still rewrote at OptLevel::None ({} checks)",
                none.stats.condition_checks
            ));
        }
        let none_ns = median_ns(25, || {
            dbms.rewrite_uncached(&prepared).unwrap();
        });
        println!(
            "trivial prepare: simple {simple_ns:.0} ns, none {none_ns:.0} ns ({:.1}x faster)",
            simple_ns / none_ns
        );
        if none_ns >= simple_ns {
            failures.push(format!(
                "OptLevel::None did not cut trivial-statement prepare time \
                 (none {none_ns:.0} ns >= simple {simple_ns:.0} ns)"
            ));
        }
    }

    if failures.is_empty() {
        println!("opt_level gate: all checks passed");
    } else {
        eprintln!("opt_level gate failures:");
        for f in &failures {
            eprintln!("  {f}");
        }
        std::process::exit(1);
    }
}
