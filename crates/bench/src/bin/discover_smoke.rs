//! Fixed-seed rule-discovery smoke for CI's main matrix.
//!
//! Runs the discovery pipeline against the built-in knowledge base once
//! per committed seed (`verify/seeds.txt` at the workspace root; the
//! default seed when the file is absent), printing the survival funnel,
//! wall clock, and candidate throughput. The run fails (exit 1) if any
//! seed emits zero rules — the enumerate→prove→rank funnel drying up
//! means a pipeline stage regressed — or if any emitted rule fails to
//! re-register against the built-in KB under the deny lint policy.
//!
//! The candidates/sec line keeps the discovery tier honest: the
//! enumeration and prover budgets are sized so a full run stays in the
//! low seconds, and a pathological slowdown shows up here before it
//! stalls the main CI matrix.
//!
//! Usage: `cargo run -p eds-bench --bin discover_smoke` from anywhere
//! in the workspace. Reproduce a pass locally with
//! `eds-discover --seed <seed>`.

use std::time::Instant;

use eds_core::verify::DEFAULT_SEED;
use eds_core::{Dbms, DiscoverOptions, LintPolicy};

fn seeds() -> Vec<u64> {
    let mut dir = std::env::current_dir().expect("cwd");
    let path = loop {
        if dir.join("Cargo.lock").exists() {
            break dir.join("verify/seeds.txt");
        }
        assert!(dir.pop(), "no workspace root above the current directory");
    };
    let Ok(text) = std::fs::read_to_string(&path) else {
        return vec![DEFAULT_SEED];
    };
    let parsed: Vec<u64> = text
        .lines()
        .filter_map(|l| {
            let l = l.split('#').next().unwrap_or("").trim();
            if l.is_empty() {
                return None;
            }
            Some(
                match l.strip_prefix("0x").or_else(|| l.strip_prefix("0X")) {
                    Some(hex) => u64::from_str_radix(hex, 16)
                        .unwrap_or_else(|e| panic!("bad seed {l:?} in {}: {e}", path.display())),
                    None => l
                        .parse()
                        .unwrap_or_else(|e| panic!("bad seed {l:?} in {}: {e}", path.display())),
                },
            )
        })
        .collect();
    assert!(!parsed.is_empty(), "{} lists no seeds", path.display());
    parsed
}

fn main() {
    let mut failed = false;
    for seed in seeds() {
        let dbms = Dbms::new().expect("built-in rules must load");
        let opts = DiscoverOptions {
            seed,
            ..DiscoverOptions::default()
        };
        let t = Instant::now();
        let discovery = dbms.discover(&opts);
        let secs = t.elapsed().as_secs_f64();
        let throughput = discovery.funnel.candidates as f64 / secs.max(1e-9);
        println!(
            "seed {seed:#x}: {} rule(s) in {:.0} ms ({throughput:.0} candidates/sec)",
            discovery.rules.len(),
            secs * 1e3
        );
        println!("  funnel: {}", discovery.funnel);
        if discovery.rules.is_empty() {
            eprintln!("discover_smoke: seed {seed:#x} emitted no rules; a funnel stage regressed");
            failed = true;
            continue;
        }
        // The emitted source must register cleanly on top of the
        // built-in KB at the strictest lint policy — what CI's
        // eds-lint gate enforces on the artifact, checked here per
        // seed so a drift is attributable to one run.
        let mut fresh = Dbms::new().expect("built-in rules must load");
        if let Err(e) = fresh.add_rule_source_checked(&discovery.render(), LintPolicy::Deny) {
            eprintln!("discover_smoke: seed {seed:#x}: emitted rules rejected: {e}");
            failed = true;
        }
    }
    if failed {
        eprintln!("discover_smoke: replay with eds-discover --seed <seed>");
        std::process::exit(1);
    }
}
