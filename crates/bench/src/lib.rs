//! Workload generators shared by the benchmark harness.
//!
//! Each generator builds a [`Dbms`] populated with synthetic data sized
//! by a scale parameter, plus the queries the corresponding experiment
//! sweeps. See `EXPERIMENTS.md` at the repository root for the mapping
//! from paper figures to benches.

#![warn(missing_docs)]

use eds_adt::Value;
use eds_core::Dbms;
use eds_testkit::StdRng;

/// The film database of Figure 2 scaled to `films` films and
/// `actors` actors, with ~3 appearances per film.
pub fn film_dbms(films: i64, actors: i64, seed: u64) -> Dbms {
    let mut dbms = Dbms::new().expect("default rules load");
    dbms.execute_ddl(
        "TYPE Category ENUMERATION OF ('Comedy', 'Adventure', 'Science Fiction', 'Western') ;
         TYPE Person OBJECT TUPLE ( Name : CHAR, Firstname : SET OF CHAR) ;
         TYPE Actor SUBTYPE OF Person OBJECT TUPLE (Salary : NUMERIC) ;
         TYPE SetCategory SET OF Category ;
         TABLE FILM ( Numf : NUMERIC, Title : CHAR, Categories : SetCategory) ;
         TABLE APPEARS_IN ( Numf : NUMERIC, Refactor : Actor) ;
         TABLE DOMINATE ( Numf : NUMERIC, Refactor1 : Actor, Refactor2 : Actor) ;",
    )
    .expect("schema installs");

    let mut rng = StdRng::seed_from_u64(seed);
    let categories = ["Comedy", "Adventure", "Science Fiction", "Western"];

    let actor_refs: Vec<Value> = (0..actors)
        .map(|i| {
            dbms.create_object(
                "Actor",
                Value::Tuple(vec![
                    Value::str(format!("Actor{i}")),
                    Value::set(vec![]),
                    Value::Int(5_000 + (i % 40) * 1_000),
                ]),
            )
        })
        .collect();

    for f in 0..films {
        let mut cats: Vec<Value> = categories
            .iter()
            .filter(|_| rng.gen_bool(0.4))
            .map(|c| Value::str(*c))
            .collect();
        if cats.is_empty() {
            cats.push(Value::str("Comedy"));
        }
        dbms.insert(
            "FILM",
            vec![
                Value::Int(f),
                Value::str(format!("Film{f}")),
                Value::set(cats),
            ],
        )
        .unwrap();
        for _ in 0..3 {
            let a = &actor_refs[rng.gen_range(0..actor_refs.len())];
            dbms.insert("APPEARS_IN", vec![Value::Int(f), a.clone()])
                .unwrap();
        }
    }
    for _ in 0..actors {
        let a = actor_refs[rng.gen_range(0..actor_refs.len())].clone();
        let b = actor_refs[rng.gen_range(0..actor_refs.len())].clone();
        dbms.insert(
            "DOMINATE",
            vec![Value::Int(rng.gen_range(0..films.max(1))), a, b],
        )
        .unwrap();
    }
    dbms
}

/// A stack of `depth` selective views over one base table, ending in a
/// view `V<depth>`; the merging experiment's workload.
pub fn view_stack(depth: usize, rows: i64) -> Dbms {
    let mut dbms = Dbms::new().expect("default rules load");
    dbms.execute_ddl("TABLE BASE (K : INT, A : INT, B : INT);")
        .unwrap();
    for i in 0..rows {
        dbms.insert("BASE", vec![i.into(), (i % 97).into(), (i % 13).into()])
            .unwrap();
    }
    let mut prev = "BASE".to_owned();
    for d in 1..=depth {
        // Each level keeps most rows so deep stacks stay non-trivial.
        dbms.execute_ddl(&format!(
            "CREATE VIEW V{d} (K, A, B) AS SELECT K, A, B FROM {prev} WHERE A >= {d} ;"
        ))
        .unwrap();
        prev = format!("V{d}");
    }
    dbms
}

/// A union view with `branches` branches over per-branch tables; the
/// union-pushdown experiment's workload.
pub fn union_view(branches: usize, rows_per_branch: i64) -> Dbms {
    let mut dbms = Dbms::new().expect("default rules load");
    let mut selects = Vec::new();
    for b in 0..branches {
        dbms.execute_ddl(&format!("TABLE PART{b} (K : INT, P : INT);"))
            .unwrap();
        for i in 0..rows_per_branch {
            dbms.insert(&format!("PART{b}"), vec![i.into(), (b as i64).into()])
                .unwrap();
        }
        selects.push(format!("SELECT K, P FROM PART{b}"));
    }
    dbms.execute_ddl(&format!(
        "CREATE VIEW ALLPARTS (K, P) AS ( {} ) ;",
        selects.join(" UNION ")
    ))
    .unwrap();
    dbms
}

/// A nested (GROUP BY) view over an order/detail pair; the nest-pushdown
/// experiment's workload.
pub fn nested_view(groups: i64, per_group: i64) -> Dbms {
    let mut dbms = Dbms::new().expect("default rules load");
    dbms.execute_ddl(
        "TABLE DETAIL (G : INT, Item : INT);
         CREATE VIEW GROUPED (G, Items) AS
           SELECT G, MakeSet(Item) FROM DETAIL GROUP BY G ;",
    )
    .unwrap();
    for g in 0..groups {
        for i in 0..per_group {
            dbms.insert("DETAIL", vec![g.into(), (g * per_group + i).into()])
                .unwrap();
        }
    }
    dbms
}

/// A graph table `EDGE` plus the recursive `TC` view; the recursion
/// experiment's workload. Mostly-forward random edges.
pub fn graph_dbms(nodes: i64, extra_edges: i64, seed: u64) -> Dbms {
    let mut dbms = Dbms::new().expect("default rules load");
    dbms.execute_ddl(
        "TABLE EDGE (Src : INT, Dst : INT);
         CREATE VIEW TC (Src, Dst) AS
         ( SELECT Src, Dst FROM EDGE
           UNION
           SELECT T1.Src, T2.Dst FROM TC T1, TC T2 WHERE T1.Dst = T2.Src ) ;",
    )
    .unwrap();
    for i in 0..nodes - 1 {
        dbms.insert("EDGE", vec![i.into(), (i + 1).into()]).unwrap();
    }
    let mut rng = StdRng::seed_from_u64(seed);
    for _ in 0..extra_edges {
        let a = rng.gen_range(0..nodes - 1);
        let b = (a + rng.gen_range(1..5)).min(nodes - 1);
        dbms.insert("EDGE", vec![a.into(), b.into()]).unwrap();
    }
    dbms
}

/// A flat product table with an enumeration domain and declared
/// integrity constraints; the semantic experiment's workload.
pub fn product_dbms(rows: i64) -> Dbms {
    let mut dbms = Dbms::new().expect("default rules load");
    dbms.execute_ddl(
        "TYPE Grade ENUMERATION OF ('A', 'B', 'C') ;
         TABLE PRODUCT (Id : INT, Grade : Grade, Price : INT, Weight : INT);",
    )
    .unwrap();
    dbms.add_constraint_source(
        "GradeDomain : F(x) / ISA(x, Grade) --> F(x) AND MEMBER(x, {'A', 'B', 'C'}) / ;",
    )
    .unwrap();
    for i in 0..rows {
        let grade = ["A", "B", "C"][(i % 3) as usize];
        dbms.insert(
            "PRODUCT",
            vec![
                i.into(),
                grade.into(),
                (i * 7 % 1000).into(),
                (i % 50).into(),
            ],
        )
        .unwrap();
    }
    dbms
}

/// A wide flat table whose columns all land in typed columnar layouts —
/// INT keys, an INT column with scattered NULLs (exercises the null
/// bitmap), a CHAR column drawn from a small tag vocabulary (exercises
/// string interning), and a small grouping key; the columnar-scan
/// experiment's workload.
pub fn scan_dbms(rows: i64, seed: u64) -> Dbms {
    let mut dbms = Dbms::new().expect("default rules load");
    dbms.execute_ddl("TABLE SCAN (K : INT, A : INT, B : INT, Tag : CHAR, G : INT);")
        .unwrap();
    let tags = [
        "hot", "cold", "warm", "cool", "tepid", "mild", "arid", "damp",
    ];
    let mut rng = StdRng::seed_from_u64(seed);
    for i in 0..rows {
        let a = if i % 13 == 5 {
            Value::Null
        } else {
            Value::Int(rng.gen_range(0..1000))
        };
        dbms.insert(
            "SCAN",
            vec![
                Value::Int(i),
                a,
                Value::Int(i * 7 % 1000),
                Value::str(tags[rng.gen_range(0..tags.len())]),
                Value::Int(i % 16),
            ],
        )
        .unwrap();
    }
    dbms
}

/// A deep conjunction with `n` foldable and `n` non-foldable conjuncts;
/// the simplification experiment's query generator.
pub fn wide_conjunction_sql(n: usize) -> String {
    let mut parts = Vec::new();
    for i in 0..n {
        parts.push(format!("X < {} + {}", i, i + 5)); // foldable arithmetic
        parts.push(format!("Y <> {i}")); // kept
    }
    format!("SELECT X FROM T WHERE {} ;", parts.join(" AND "))
}

/// Table for [`wide_conjunction_sql`].
pub fn simple_table(rows: i64) -> Dbms {
    let mut dbms = Dbms::new().expect("default rules load");
    dbms.execute_ddl("TABLE T (X : INT, Y : INT);").unwrap();
    for i in 0..rows {
        dbms.insert("T", vec![i.into(), (i * 3 % 101).into()])
            .unwrap();
    }
    dbms
}

/// A join-order-sensitive 3-way join: `R ⋈ S` (through a view `RS`)
/// joined with a small `T`. The canonical plan nests the view's search
/// inside the outer one; syntactic saturation *flattens* it into one
/// 3-way search, which the executor evaluates as a full cross product —
/// `|R|·|S|·|T|` combinations instead of `|R|·|S| + |R⋈S|·|T|`. The
/// statistics-backed estimator sees the difference, so `OptLevel::Full`
/// keeps the nested shape; the opt-level experiment's first workload.
pub fn join3_dbms(rows: i64, keys: i64, small: i64) -> Dbms {
    let mut dbms = Dbms::new().expect("default rules load");
    dbms.execute_ddl(
        "TABLE R (K : INT, A : INT);
         TABLE S (K : INT, J : INT);
         TABLE T (J : INT, B : INT);
         CREATE VIEW RS (K, J) AS SELECT R.K, S.J FROM R, S WHERE R.K = S.K ;",
    )
    .unwrap();
    for i in 0..rows {
        dbms.insert("R", vec![(i % keys).into(), i.into()]).unwrap();
        dbms.insert("S", vec![(i % keys).into(), (i % small).into()])
            .unwrap();
    }
    for j in 0..small {
        dbms.insert("T", vec![j.into(), (j * 3).into()]).unwrap();
    }
    dbms
}

/// A pushdown-vs-no-pushdown case: a small union joined with a *highly
/// selective* filtered view over a big table. Saturation merges the
/// view's filter up into the join qualification, so the executor
/// enumerates `|union|·|big|` combinations; keeping the filtered search
/// nested evaluates the filter first and joins against its few
/// survivors. The opt-level experiment's second workload.
pub fn filter_pushdown_dbms(union_rows: i64, big_rows: i64) -> Dbms {
    let mut dbms = Dbms::new().expect("default rules load");
    dbms.execute_ddl(
        "TABLE U0 (K : INT);
         TABLE U1 (K : INT);
         TABLE BIGF (K : INT, V : INT);
         CREATE VIEW ALLU (K) AS ( SELECT K FROM U0 UNION SELECT K FROM U1 ) ;
         CREATE VIEW FSEL (K) AS SELECT K FROM BIGF WHERE V = 7 ;",
    )
    .unwrap();
    for i in 0..union_rows {
        dbms.insert("U0", vec![i.into()]).unwrap();
        dbms.insert("U1", vec![(i + union_rows).into()]).unwrap();
    }
    for i in 0..big_rows {
        dbms.insert(
            "BIGF",
            vec![(i % (4 * union_rows)).into(), (i % 500).into()],
        )
        .unwrap();
    }
    dbms
}

/// The opt-level workload suite: `(id, dbms, sql)` triples where the
/// statistics-backed `Full` level picks a measurably cheaper plan than
/// `Simple`'s pure saturation. Shared by the `exec` bench (kind
/// `opt_level` in `BENCH_exec.json`), the differential suites and the
/// CI gate.
pub fn opt_level_workloads() -> Vec<(&'static str, Dbms, String)> {
    vec![
        (
            "ol_join3",
            join3_dbms(400, 80, 40),
            "SELECT B FROM RS, T WHERE RS.J = T.J ;".to_owned(),
        ),
        (
            "ol_pushdown",
            filter_pushdown_dbms(50, 20_000),
            "SELECT ALLU.K FROM ALLU, FSEL WHERE ALLU.K = FSEL.K ;".to_owned(),
        ),
    ]
}

/// The executor-bench workload suite: `(id, dbms, sql)` triples shared
/// by the `exec` bench and its committed `before` baseline so the two
/// sides of `BENCH_exec.json` always measure identical data and queries.
///
/// Workloads are chosen to exercise the executor's hot paths: per-row
/// predicate evaluation over object dereferences (`Salary(Refactor)`),
/// n-ary joins, merged filter chains, union pushdown output, recursive
/// fixpoints, and duplicate elimination.
pub fn exec_workloads() -> Vec<(&'static str, Dbms, String)> {
    vec![
        (
            "film_salary_filter",
            film_dbms(1000, 200, 7),
            "SELECT Numf FROM APPEARS_IN WHERE Salary(Refactor) > 20000 ;".to_owned(),
        ),
        (
            "film_join",
            film_dbms(150, 80, 7),
            "SELECT Title FROM FILM, APPEARS_IN \
             WHERE Salary(Refactor) > 20000 AND FILM.Numf = APPEARS_IN.Numf ;"
                .to_owned(),
        ),
        (
            "dominate_names",
            film_dbms(300, 400, 7),
            "SELECT Numf FROM DOMINATE WHERE Name(Refactor1) = Name(Refactor2) ;".to_owned(),
        ),
        (
            "stack_filter",
            view_stack(8, 4000),
            "SELECT K FROM V8 WHERE B = 3 ;".to_owned(),
        ),
        (
            "union_filter",
            union_view(8, 2000),
            "SELECT K FROM ALLPARTS WHERE P = 3 ;".to_owned(),
        ),
        (
            "tc_bound",
            graph_dbms(60, 15, 7),
            "SELECT Dst FROM TC WHERE Src = 50 ;".to_owned(),
        ),
        (
            "distinct_parts",
            union_view(4, 3000),
            "SELECT DISTINCT P FROM ALLPARTS ;".to_owned(),
        ),
        // Columnar-eligible scans over a flat typed table. Keep these at
        // the END: the exec bench addresses earlier workloads by index.
        (
            "scan_int_filter",
            scan_dbms(16_000, 7),
            "SELECT K FROM SCAN WHERE A > 800 AND B < 300 ;".to_owned(),
        ),
        (
            "scan_str_filter",
            scan_dbms(16_000, 7),
            "SELECT K FROM SCAN WHERE Tag = 'hot' ;".to_owned(),
        ),
        (
            "scan_group_agg",
            scan_dbms(16_000, 7),
            "SELECT G, MakeSet(K) FROM SCAN WHERE A > 900 GROUP BY G ;".to_owned(),
        ),
    ]
}

/// The morsel-scheduler workload suite: one million-row `SCAN` table
/// shared by several queries (`(id, sql)` pairs), so the exec bench can
/// measure the morsel executor on inputs hundreds of morsels deep. At
/// 16 k rows a scan is ~8 morsels and scheduling overhead is visible;
/// at 1 M rows (489 morsels) the parallel path has room to win — the
/// crossover the `EXPERIMENTS.md` entry records. Kept separate from
/// [`exec_workloads`], whose entries are addressed by index.
pub fn exec_workloads_1m() -> (Dbms, Vec<(&'static str, String)>) {
    let dbms = scan_dbms(1_000_000, 7);
    let queries = vec![
        (
            "scan1m_int_filter",
            "SELECT K FROM SCAN WHERE A > 800 AND B < 300 ;".to_owned(),
        ),
        (
            "scan1m_str_filter",
            "SELECT K FROM SCAN WHERE Tag = 'hot' ;".to_owned(),
        ),
        (
            "scan1m_group_agg",
            "SELECT G, MakeSet(K) FROM SCAN WHERE A > 900 GROUP BY G ;".to_owned(),
        ),
    ];
    (dbms, queries)
}

/// ESQL literal spelling of a bind value; used to build the
/// literal-substituted comparator queries of the prepared-statement
/// benchmarks and differential suites.
pub fn value_literal(v: &Value) -> String {
    match v {
        Value::Null => "NULL".to_owned(),
        Value::Bool(b) => if *b { "TRUE" } else { "FALSE" }.to_owned(),
        Value::Int(i) => i.to_string(),
        Value::Real(r) => format!("{:?}", r.0),
        Value::Str(s) => format!("'{}'", s.replace('\'', "''")),
        other => panic!("no literal spelling for {other:?}"),
    }
}

/// Replace each `?` in `sql` (left to right) with the literal spelling
/// of the matching bind value — the unprepared comparator of an
/// `execute_many` workload. The SQL must not quote a `?`.
pub fn literal_sql(sql: &str, binds: &[Value]) -> String {
    let mut next = binds.iter();
    sql.chars()
        .map(|c| {
            if c == '?' {
                value_literal(next.next().expect("more ? than binds"))
            } else {
                c.to_string()
            }
        })
        .collect()
}

/// The prepared-statement amortization suite: `(id, dbms, sql, binds)`
/// where `sql` is `?`-parameterized and `binds` the bind arrays cycled
/// during measurement. Workloads are deliberately **front-end bound** —
/// deep view stacks, wide unions, wide conjunctions — so what a
/// prepared statement amortizes (parse, view expansion, rewrite, term
/// bridging, lowering) dominates what it cannot (the scan itself).
/// Ids carry the `em_` prefix the exec report maps to kind
/// `execute_many`.
///
/// Deliberately absent: a bound recursive query (`TC WHERE Src = ?`).
/// The Alexander/magic seeding of a fixpoint is *value-dependent* — it
/// specializes the plan on the binding constant — so under a parameter
/// it correctly defers, and the prepared plan computes the full closure
/// (measured ~700x slower than the magic-seeded literal query on the
/// 60-node graph). Bound recursion should stay on the per-query path,
/// whose plan cache amortizes repeats of the same literal; parameterized
/// magic (seeding from the bind array at execute time) is future work.
pub fn execute_many_workloads() -> Vec<(&'static str, Dbms, String, Vec<Vec<Value>>)> {
    vec![
        (
            "em_stack_point",
            view_stack(8, 4000),
            "SELECT K FROM V8 WHERE K = ? ;".to_owned(),
            vec![
                vec![Value::Int(100)],
                vec![Value::Int(2000)],
                vec![Value::Int(3999)],
                vec![Value::Int(7)],
            ],
        ),
        (
            "em_union_point",
            union_view(8, 150),
            "SELECT K FROM ALLPARTS WHERE P = ? AND K < ? ;".to_owned(),
            vec![
                vec![Value::Int(3), Value::Int(40)],
                vec![Value::Int(0), Value::Int(120)],
                vec![Value::Int(7), Value::Int(10)],
            ],
        ),
        (
            "em_stack_deep",
            view_stack(16, 1000),
            "SELECT K FROM V16 WHERE K = ? ;".to_owned(),
            vec![
                vec![Value::Int(500)],
                vec![Value::Int(999)],
                vec![Value::Int(42)],
            ],
        ),
        (
            "em_wide_pred",
            simple_table(1000),
            {
                // Two parameter conjuncts leading a wide, partly foldable
                // qualification: the per-query path re-parses and
                // re-bridges all of it on every execution.
                let mut parts = vec!["X < ?".to_owned(), "Y <> ?".to_owned()];
                for i in 0..10 {
                    parts.push(format!("X < {} + {}", i, i + 5));
                    parts.push(format!("Y <> {i}"));
                }
                format!("SELECT X FROM T WHERE {} ;", parts.join(" AND "))
            },
            vec![
                vec![Value::Int(4), Value::Int(9)],
                vec![Value::Int(5), Value::Int(1)],
                vec![Value::Int(0), Value::Int(50)],
            ],
        ),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn literal_substitution_spells_values() {
        assert_eq!(
            literal_sql(
                "SELECT X FROM T WHERE A = ? AND B = ? AND C = ? ;",
                &[Value::Int(3), Value::real(2.5), Value::str("o'k")]
            ),
            "SELECT X FROM T WHERE A = 3 AND B = 2.5 AND C = 'o''k' ;"
        );
        assert_eq!(
            literal_sql("? ?", &[Value::Null, Value::Bool(true)]),
            "NULL TRUE"
        );
    }

    #[test]
    fn execute_many_workloads_bind_correctly() {
        for (id, dbms, sql, binds) in execute_many_workloads() {
            let stmt = dbms.prepare_stmt(&sql).unwrap();
            for b in &binds {
                let got = stmt.execute(&dbms, b).unwrap();
                let want = dbms.query(&literal_sql(&sql, b)).unwrap();
                assert_eq!(got.rows, want.rows, "{id} binds {b:?}");
            }
        }
    }

    #[test]
    fn generators_build() {
        assert_eq!(film_dbms(10, 5, 1).db.cardinality("FILM"), Some(10));
        assert!(view_stack(3, 20).prepare("SELECT K FROM V3 ;").is_ok());
        assert!(union_view(3, 5).prepare("SELECT K FROM ALLPARTS ;").is_ok());
        assert!(nested_view(4, 3).prepare("SELECT G FROM GROUPED ;").is_ok());
        assert!(graph_dbms(10, 3, 1)
            .prepare("SELECT Dst FROM TC WHERE Src = 1 ;")
            .is_ok());
        assert_eq!(
            product_dbms(9)
                .query("SELECT Id FROM PRODUCT WHERE Grade = 'A' ;")
                .unwrap()
                .len(),
            3
        );
        let sql = wide_conjunction_sql(2);
        assert!(simple_table(5).prepare(&sql).is_ok());
        assert_eq!(scan_dbms(30, 1).db.cardinality("SCAN"), Some(30));
    }
}
