//! Columnar differential suite: with `EvalOptions.columnar` on, every
//! workload must return *byte-identical* results — same rows, same
//! order — as both the row-at-a-time path (`columnar: false`) and the
//! seed reference interpreter (`eds_engine::reference`), across join
//! modes, fixpoint modes, and parallelism. The fixtures are chosen to
//! hit every kernel and every fallback: typed INT/REAL/BOOL/CHAR
//! columns, NULL bitmaps, mid-column type spills, enum/ADT/collection
//! spill columns, kind-mismatch and NULL-constant predicates, deref
//! predicates (row fallback), and NULL join keys in the typed i64 hash
//! path.

use eds_adt::Value;
use eds_bench::{film_dbms, scan_dbms};
use eds_core::Dbms;
use eds_engine::{eval_reference, ColumnarRelation, EvalOptions, FixMode, FixOptions, JoinMode};
use eds_lera::Expr;

/// Every physical configuration with columnar toggled both ways.
fn all_configs() -> Vec<EvalOptions> {
    let mut out = Vec::new();
    for join in [JoinMode::NestedLoop, JoinMode::Hash] {
        for fix_mode in [FixMode::Naive, FixMode::SemiNaive] {
            for parallelism in [1usize, 4] {
                for columnar in [false, true] {
                    out.push(EvalOptions {
                        fix: FixOptions {
                            mode: fix_mode,
                            ..Default::default()
                        },
                        join,
                        parallelism,
                        columnar,
                        // Exercise derived/local mirrors on every
                        // intermediate, however small.
                        derived_mirror_min: 0,
                        opt_level: Default::default(),
                    });
                }
            }
        }
    }
    out
}

/// Columnar on must equal columnar off must equal the reference
/// interpreter — rows and order, byte for byte.
fn assert_equivalent(id: &str, dbms: &Dbms, expr: &Expr) {
    for opts in all_configs() {
        let fast = eds_engine::eval_with(expr, &dbms.db, opts)
            .unwrap_or_else(|e| panic!("{id}: executor failed under {opts:?}: {e}"))
            .0;
        let reference = eval_reference(expr, &dbms.db, opts)
            .unwrap_or_else(|e| panic!("{id}: reference executor failed under {opts:?}: {e}"));
        assert_eq!(
            fast.schema, reference.schema,
            "{id}: schema diverges under {opts:?}"
        );
        assert_eq!(
            fast.rows, reference.rows,
            "{id}: rows diverge from the reference interpreter under {opts:?}"
        );
    }
}

fn check(dbms: &Dbms, sql: &str) {
    let prepared = dbms.prepare(sql).unwrap();
    assert_equivalent(&format!("{sql} [raw]"), dbms, &prepared.expr);
    let rewritten = dbms.rewrite(&prepared).unwrap();
    assert_equivalent(&format!("{sql} [rewritten]"), dbms, &rewritten.expr);
}

/// A table whose columns cover every layout the builder knows: typed
/// INT (with NULLs), REAL, BOOL, CHAR, plus spill columns (mixed
/// INT/REAL, mid-column INT→CHAR conflict, and collections).
fn mixed_dbms() -> Dbms {
    let mut dbms = Dbms::new().unwrap();
    dbms.execute_ddl(
        "TABLE MIXED (K : INT, N : INT, R : REAL, Flag : BOOL,
                      Tag : CHAR, Blend : NUMERIC, Drift : CHAR, Bag : INT);",
    )
    .unwrap();
    let tags = ["red", "green", "blue"];
    for i in 0..60i64 {
        let n = if i % 7 == 3 {
            Value::Null
        } else {
            Value::Int(i % 10)
        };
        // Blend mixes Int and Real mid-column: must spill, not promote.
        let blend = if i % 2 == 0 {
            Value::Int(i)
        } else {
            Value::real(i as f64 + 0.5)
        };
        // Drift switches kind mid-column: CHAR until row 40, then INT.
        let drift = if i < 40 {
            Value::str(tags[(i % 3) as usize])
        } else {
            Value::Int(i)
        };
        dbms.insert(
            "MIXED",
            vec![
                Value::Int(i),
                n,
                Value::real((i % 5) as f64 * 1.25),
                Value::Bool(i % 3 == 0),
                Value::str(tags[(i % 3) as usize]),
                blend,
                drift,
                Value::set(vec![Value::Int(i % 4)]),
            ],
        )
        .unwrap();
    }
    dbms
}

#[test]
fn typed_column_predicates_match_row_path_and_reference() {
    let dbms = mixed_dbms();
    for sql in [
        // Int column vs const, both comparison directions, with NULLs.
        "SELECT K FROM MIXED WHERE N > 4 ;",
        "SELECT K FROM MIXED WHERE 4 > N ;",
        "SELECT K FROM MIXED WHERE N = 7 ;",
        "SELECT K FROM MIXED WHERE N <> 7 ;",
        // Real column vs int const (kernel widens the constant).
        "SELECT K FROM MIXED WHERE R > 2 ;",
        // String equality and ordering on the interned column.
        "SELECT K FROM MIXED WHERE Tag = 'green' ;",
        "SELECT K FROM MIXED WHERE Tag > 'blue' ;",
        // Bool column.
        "SELECT K FROM MIXED WHERE Flag = TRUE ;",
        // Column-vs-column, same kind and cross-kind (Int vs Real).
        "SELECT K FROM MIXED WHERE K > N ;",
        "SELECT K FROM MIXED WHERE K > R ;",
        "SELECT K FROM MIXED WHERE R < N ;",
        // Conjunctions refine one selection vector.
        "SELECT K FROM MIXED WHERE N > 2 AND K < 50 AND Tag <> 'red' ;",
        // Kind mismatch: Int column vs string const (discriminant order).
        "SELECT K FROM MIXED WHERE N < 'zzz' ;",
        "SELECT K FROM MIXED WHERE N = 'zzz' ;",
        // Spill columns force the row fallback.
        "SELECT K FROM MIXED WHERE Blend > 10 ;",
        "SELECT K FROM MIXED WHERE Drift = 'red' ;",
        // Projection of every layout, including spills.
        "SELECT K, N, R, Flag, Tag, Blend, Drift, Bag FROM MIXED ;",
        "SELECT Tag, R FROM MIXED WHERE K > 30 ;",
    ] {
        check(&dbms, sql);
    }
}

#[test]
fn null_constants_and_empty_matches_stay_empty() {
    let mut dbms = mixed_dbms();
    // A comparison against NULL selects nothing on every path.
    check(&dbms, "SELECT K FROM MIXED WHERE N > K + NULL ;");
    // A tag no row carries: the string kernel's truth table is all-false.
    check(&dbms, "SELECT K FROM MIXED WHERE Tag = 'magenta' ;");
    // An all-NULL typed column spills to row-major and still matches.
    dbms.execute_ddl("TABLE HOLES (K : INT, V : INT);").unwrap();
    for i in 0..10i64 {
        dbms.insert("HOLES", vec![Value::Int(i), Value::Null])
            .unwrap();
    }
    check(&dbms, "SELECT K FROM HOLES WHERE V = 1 ;");
    check(&dbms, "SELECT K FROM HOLES WHERE V = NULL ;");
}

#[test]
fn object_deref_predicates_fall_back_and_match() {
    // Salary(Refactor) dereferences the object store per row — no
    // columnar kernel exists for it, so the whole predicate must fall
    // back without diverging.
    let dbms = film_dbms(120, 40, 11);
    check(
        &dbms,
        "SELECT Numf FROM APPEARS_IN WHERE Salary(Refactor) > 20000 ;",
    );
    check(
        &dbms,
        "SELECT Title FROM FILM, APPEARS_IN \
         WHERE Salary(Refactor) > 20000 AND FILM.Numf = APPEARS_IN.Numf ;",
    );
    // Enum-set column (Categories) spills; MEMBER still matches.
    check(
        &dbms,
        "SELECT Title FROM FILM WHERE MEMBER('Western', Categories) ;",
    );
}

#[test]
fn joins_with_null_keys_match_on_every_path() {
    let mut dbms = Dbms::new().unwrap();
    dbms.execute_ddl("TABLE L (K : INT, A : INT); TABLE R (K : INT, B : INT);")
        .unwrap();
    for i in 0..30i64 {
        let lk = if i % 9 == 4 {
            Value::Null
        } else {
            Value::Int(i % 8)
        };
        dbms.insert("L", vec![lk, Value::Int(i)]).unwrap();
        let rk = if i % 11 == 6 {
            Value::Null
        } else {
            Value::Int(i % 6)
        };
        dbms.insert("R", vec![rk, Value::Int(i * 2)]).unwrap();
    }
    // The typed i64 hash path must agree with the generic path and the
    // nested loop on NULL keys (structural [NULL]==[NULL] candidates are
    // produced, then rejected by the predicate re-check).
    check(&dbms, "SELECT A, B FROM L, R WHERE L.K = R.K ;");
    check(&dbms, "SELECT A, B FROM L, R WHERE L.K = R.K AND B > 10 ;");
}

#[test]
fn recursive_fixpoints_never_columnarize_their_deltas() {
    // TC's locals (and NAME#DELTA) shadow base names; the columnar path
    // must ignore them and still agree everywhere.
    let dbms = eds_bench::graph_dbms(40, 10, 11);
    check(&dbms, "SELECT Dst FROM TC WHERE Src = 30 ;");
    check(&dbms, "SELECT Src FROM TC WHERE Dst > 35 ;");
}

#[test]
fn scan_workloads_match_under_aggregation() {
    let dbms = scan_dbms(2_000, 11);
    check(&dbms, "SELECT K FROM SCAN WHERE A > 500 AND B < 400 ;");
    check(&dbms, "SELECT K FROM SCAN WHERE Tag = 'hot' ;");
    check(
        &dbms,
        "SELECT G, MakeSet(K) FROM SCAN WHERE A > 250 GROUP BY G ;",
    );
    check(&dbms, "SELECT DISTINCT Tag FROM SCAN WHERE A < 100 ;");
}

#[test]
fn mirror_row_view_reproduces_rows_exactly_and_flags_spills() {
    let dbms = mixed_dbms();
    let rel = dbms.db.relation("MIXED").unwrap();
    let cols = ColumnarRelation::build(rel).expect("MIXED has typed columns");
    assert_eq!(cols.len(), rel.len());
    assert_eq!(cols.arity(), rel.schema.arity());
    for (i, row) in rel.rows.iter().enumerate() {
        assert_eq!(
            &cols.row(i)[..],
            &row[..],
            "row view diverges from the authoritative row store at {i}"
        );
    }
    // K, N, R, Flag, Tag are typed; Blend, Drift, Bag spill.
    for (j, typed) in [true, true, true, true, true, false, false, false]
        .into_iter()
        .enumerate()
    {
        assert_eq!(cols.column_is_typed(j), typed, "column {j}");
    }
}

#[test]
fn database_mirrors_are_invalidated_by_every_mutation() {
    let mut dbms = Dbms::new().unwrap();
    dbms.execute_ddl("TABLE M (K : INT);").unwrap();
    for i in 0..5i64 {
        dbms.insert("M", vec![Value::Int(i)]).unwrap();
    }
    let q = "SELECT K FROM M WHERE K >= 3 ;";
    assert_eq!(dbms.query(q).unwrap().len(), 2);

    // Insert after the mirror was built: the next scan must see the row.
    dbms.insert("M", vec![Value::Int(7)]).unwrap();
    assert_eq!(dbms.query(q).unwrap().len(), 3);

    // A mid-column kind change flips the relation back to row-major
    // ('eight' >= 3 holds under the cross-kind discriminant order, so
    // the row also joins the result).
    dbms.insert("M", vec![Value::str("eight")]).unwrap();
    assert_eq!(dbms.query(q).unwrap().len(), 4);
    assert!(ColumnarRelation::build(dbms.db.relation("M").unwrap()).is_none());

    // Truncation empties the table; the stale mirror must not leak.
    dbms.db.truncate("M").unwrap();
    assert_eq!(dbms.query(q).unwrap().len(), 0);

    // Refilling through `relation_mut` (the raw escape hatch) also
    // drops the mirror before handing out the `&mut`.
    dbms.db.relation_mut("M").unwrap().push(vec![Value::Int(9)]);
    assert_eq!(dbms.query(q).unwrap().len(), 1);
}
