//! Differential suite: the overhauled executor must return *byte-identical*
//! results — same rows, same order — as the reference executor (the seed
//! tree-walking interpreter preserved in `eds_engine::reference`) across
//! every physical configuration: both join modes, both fixpoint modes, and
//! parallelism 1 and 4.

use eds_bench::exec_workloads;
use eds_core::Dbms;
use eds_engine::{eval_reference, EvalOptions, FixMode, FixOptions, JoinMode};
use eds_lera::Expr;

fn all_configs() -> Vec<EvalOptions> {
    let mut out = Vec::new();
    for join in [JoinMode::NestedLoop, JoinMode::Hash] {
        for fix_mode in [FixMode::Naive, FixMode::SemiNaive] {
            for parallelism in [1usize, 4] {
                for columnar in [false, true] {
                    out.push(EvalOptions {
                        fix: FixOptions {
                            mode: fix_mode,
                            ..Default::default()
                        },
                        join,
                        parallelism,
                        columnar,
                        // Exercise derived/local mirrors on every
                        // intermediate, however small.
                        derived_mirror_min: 0,
                        opt_level: Default::default(),
                    });
                }
            }
        }
    }
    out
}

fn assert_equivalent(id: &str, dbms: &Dbms, expr: &Expr) {
    for opts in all_configs() {
        let fast = eds_engine::eval_with(expr, &dbms.db, opts)
            .unwrap_or_else(|e| panic!("{id}: overhauled executor failed under {opts:?}: {e}"))
            .0;
        let reference = eval_reference(expr, &dbms.db, opts)
            .unwrap_or_else(|e| panic!("{id}: reference executor failed under {opts:?}: {e}"));
        assert_eq!(
            fast.schema, reference.schema,
            "{id}: schema diverges under {opts:?}"
        );
        assert_eq!(
            fast.rows, reference.rows,
            "{id}: rows diverge from the reference interpreter under {opts:?}"
        );
    }
}

/// Every benchmark workload, pre- and post-rewrite, across all configs.
#[test]
fn workloads_match_reference_in_every_configuration() {
    for (id, dbms, sql) in exec_workloads() {
        let prepared = dbms.prepare(&sql).unwrap();
        assert_equivalent(&format!("{id}/raw"), &dbms, &prepared.expr);
        let rewritten = dbms.rewrite(&prepared).unwrap();
        assert_equivalent(&format!("{id}/rewritten"), &dbms, &rewritten.expr);
    }
}

/// The rewritten plan must produce the same rows as the raw plan — the
/// rewriter is only allowed to change *how*, never *what*.
#[test]
fn rewritten_plans_preserve_results() {
    for (id, dbms, sql) in exec_workloads() {
        let prepared = dbms.prepare(&sql).unwrap();
        let rewritten = dbms.rewrite(&prepared).unwrap();
        let opts = EvalOptions::default();
        let raw = eds_engine::eval_with(&prepared.expr, &dbms.db, opts)
            .unwrap()
            .0;
        let opt = eds_engine::eval_with(&rewritten.expr, &dbms.db, opts)
            .unwrap()
            .0;
        let mut raw_rows = raw.sorted_rows();
        let mut opt_rows = opt.sorted_rows();
        raw_rows.sort();
        opt_rows.sort();
        assert_eq!(raw_rows, opt_rows, "{id}: rewrite changed the result set");
    }
}
