//! Differential suite for optimization levels: whatever plan
//! `OptLevel::Full`'s cost-guided exploration emits must be
//! row-identical (as a multiset) to `OptLevel::Simple`'s saturation
//! output, to `OptLevel::None`'s, and to the reference interpreter —
//! across the bench workloads and both parallelism and columnar
//! configurations. The estimator may pick *worse* plans without
//! breaking anything; it must never pick *wrong* ones.

use eds_bench::{exec_workloads, opt_level_workloads};
use eds_core::{Dbms, OptLevel};
use eds_engine::{eval_reference, EvalOptions};
use eds_lera::Expr;

fn configs() -> Vec<EvalOptions> {
    let mut out = Vec::new();
    for parallelism in [1usize, 4] {
        for columnar in [false, true] {
            out.push(EvalOptions {
                parallelism,
                columnar,
                ..Default::default()
            });
        }
    }
    out
}

/// Rows of `expr` under `opts`, sorted so plans that legitimately
/// reorder output can still be compared as multisets.
fn rows_of(dbms: &Dbms, expr: &Expr, opts: EvalOptions) -> Vec<eds_engine::Row> {
    eds_engine::eval_with(expr, &dbms.db, opts)
        .unwrap()
        .0
        .sorted_rows()
}

fn assert_levels_agree(id: &str, dbms: &mut Dbms, sql: &str) {
    let prepared = dbms.prepare(sql).unwrap();
    dbms.set_opt_level(OptLevel::None);
    let none = dbms.rewrite_uncached(&prepared).unwrap();
    dbms.set_opt_level(OptLevel::Simple);
    let simple = dbms.rewrite_uncached(&prepared).unwrap();
    dbms.set_opt_level(OptLevel::Full);
    let full = dbms.rewrite_uncached(&prepared).unwrap();

    for opts in configs() {
        let simple_rows = rows_of(dbms, &simple.expr, opts);
        let full_rows = rows_of(dbms, &full.expr, opts);
        assert_eq!(
            full_rows, simple_rows,
            "{id}: Full diverges from Simple under {opts:?}"
        );
        let none_rows = rows_of(dbms, &none.expr, opts);
        assert_eq!(
            none_rows, simple_rows,
            "{id}: None diverges from Simple under {opts:?}"
        );
        let reference = eval_reference(&full.expr, &dbms.db, opts)
            .unwrap_or_else(|e| panic!("{id}: reference fails on the Full plan: {e}"))
            .sorted_rows();
        assert_eq!(
            full_rows, reference,
            "{id}: overhauled executor diverges from the reference on the Full plan under {opts:?}"
        );
    }
}

/// The opt-level workloads — where Full actually picks different plans.
#[test]
fn opt_level_workloads_agree_across_levels() {
    for (id, mut dbms, sql) in opt_level_workloads() {
        assert_levels_agree(id, &mut dbms, &sql);
    }
}

/// The executor workloads — where Full usually agrees with Simple, but
/// must stay row-identical even when exploration finds something.
#[test]
fn exec_workloads_agree_across_levels() {
    for (id, mut dbms, sql) in exec_workloads() {
        assert_levels_agree(id, &mut dbms, &sql);
    }
}
