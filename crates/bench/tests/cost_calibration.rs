//! Calibration: the statistics-backed estimator's cardinality
//! predictions must land within a modest q-error of the *measured* row
//! counts on the bench schemas. A KMV sketch over a few hundred rows is
//! not a histogram, so the bound is 4x either way — tight enough to
//! catch a broken selectivity formula (uniform constants are off by
//! orders of magnitude on these queries), loose enough to absorb sketch
//! noise.

use eds_bench::{join3_dbms, simple_table};
use eds_core::Dbms;

/// Assert the estimator's output cardinality for `sql`'s canonical plan
/// is within a factor `bound` of the actual row count.
fn assert_calibrated(dbms: &Dbms, sql: &str, bound: f64) {
    let prepared = dbms.prepare(sql).unwrap();
    let actual = dbms.query(sql).unwrap().rows.len() as f64;
    let est = dbms.cost_model().estimate(&prepared.expr).card;
    assert!(
        actual > 0.0,
        "{sql}: empty result makes q-error meaningless"
    );
    let q = (est / actual).max(actual / est);
    assert!(
        q.is_finite() && q <= bound,
        "{sql}: estimated {est:.1} rows vs actual {actual:.0} (q-error {q:.2} > {bound})"
    );
}

/// Point predicate on a unique column: selectivity (1-nf)/distinct
/// should predict ~1 row out of 1000.
#[test]
fn eq_const_on_unique_column() {
    let dbms = simple_table(1000);
    assert_calibrated(&dbms, "SELECT Y FROM T WHERE X = 42 ;", 2.0);
}

/// Point predicate on a skewed-ish column: Y = i*3 % 101 puts ~10 rows
/// on each of 101 values.
#[test]
fn eq_const_on_repeating_column() {
    let dbms = simple_table(1000);
    assert_calibrated(&dbms, "SELECT X FROM T WHERE Y = 7 ;", 4.0);
}

/// Equi-join: |R|·|S| / max(d(R.K), d(S.K)) = 400·400/80 = 2000.
#[test]
fn equi_join_cardinality() {
    let dbms = join3_dbms(400, 80, 40);
    assert_calibrated(&dbms, "SELECT R.A FROM R, S WHERE R.K = S.K ;", 4.0);
}

/// Range conjuncts interpolate against the min-max sketch:
/// [100, 199] covers ~10% of X's [0, 999] domain.
#[test]
fn range_interval_interpolation() {
    let dbms = simple_table(1000);
    assert_calibrated(&dbms, "SELECT Y FROM T WHERE X >= 100 AND X <= 199 ;", 4.0);
}

/// IN-list selectivity is k/distinct — 3 values out of 1000 distinct
/// keys is 3 rows (satellite: list selectivities from the sketches).
#[test]
fn in_list_selectivity() {
    let dbms = simple_table(1000);
    assert_calibrated(&dbms, "SELECT Y FROM T WHERE X IN (1, 2, 3) ;", 4.0);
}

/// One-sided range: X >= 900 keeps the top ~10% of the domain.
#[test]
fn half_open_range() {
    let dbms = simple_table(1000);
    assert_calibrated(&dbms, "SELECT Y FROM T WHERE X >= 900 ;", 4.0);
}
