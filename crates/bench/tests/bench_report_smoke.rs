//! Smoke guard over the committed benchmark reports: `BENCH_rewrite.json`
//! and `BENCH_exec.json` must stay parseable and every entry's `speedup`
//! must be a finite number, so a botched bench regeneration fails CI
//! loudly instead of shipping NaN/Infinity into the report.
//!
//! Hand-rolled mini JSON validation — the workspace deliberately has no
//! serde dependency.

use std::path::PathBuf;

fn repo_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("repo root")
}

/// Extract every `"key": <number>` pair from a JSON text (the rewrite
/// report nests entries under groups, the exec report holds a flat
/// entry list with per-parallelism columns — a generic scan covers
/// both). Non-numeric values parse to NaN so they fail the finiteness
/// assertions downstream.
fn numeric_pairs(json: &str) -> Vec<(String, f64)> {
    let mut out = Vec::new();
    let bytes = json.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i] != b'"' {
            i += 1;
            continue;
        }
        let start = i + 1;
        let mut j = start;
        while j < bytes.len() && bytes[j] != b'"' {
            if bytes[j] == b'\\' {
                j += 1;
            }
            j += 1;
        }
        if j >= bytes.len() {
            break;
        }
        let key = &json[start..j];
        let mut k = j + 1;
        while k < bytes.len() && bytes[k].is_ascii_whitespace() {
            k += 1;
        }
        if k < bytes.len() && bytes[k] == b':' {
            k += 1;
            while k < bytes.len() && bytes[k].is_ascii_whitespace() {
                k += 1;
            }
            if k < bytes.len() && bytes[k] != b'"' && bytes[k] != b'{' && bytes[k] != b'[' {
                let end = json[k..]
                    .find(|c: char| ",}]\n ".contains(c))
                    .map_or(json.len(), |e| k + e);
                let token = json[k..end].trim();
                if !token.is_empty() && !matches!(token, "true" | "false" | "null") {
                    out.push((key.to_owned(), token.parse::<f64>().unwrap_or(f64::NAN)));
                }
                i = end;
                continue;
            }
        }
        i = j + 1;
    }
    out
}

/// Cheap structural sanity: balanced braces/brackets outside strings.
fn balanced(json: &str) -> bool {
    let (mut brace, mut bracket) = (0i64, 0i64);
    let mut in_str = false;
    let mut escape = false;
    for c in json.chars() {
        if escape {
            escape = false;
            continue;
        }
        match c {
            '\\' if in_str => escape = true,
            '"' => in_str = !in_str,
            '{' if !in_str => brace += 1,
            '}' if !in_str => brace -= 1,
            '[' if !in_str => bracket += 1,
            ']' if !in_str => bracket -= 1,
            _ => {}
        }
        if brace < 0 || bracket < 0 {
            return false;
        }
    }
    brace == 0 && bracket == 0 && !in_str
}

fn check_report(name: &str) {
    let path = repo_root().join(name);
    let text = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("{} unreadable: {e}", path.display()));
    assert!(balanced(&text), "{name}: unbalanced JSON structure");
    assert!(
        text.contains("\"unit\"") && text.contains("\"entries\""),
        "{name}: expected report shape (unit + entries)"
    );

    let pairs = numeric_pairs(&text);
    let speedups: Vec<&(String, f64)> = pairs
        .iter()
        .filter(|(k, _)| k.contains("speedup"))
        .collect();
    assert!(!speedups.is_empty(), "{name}: no speedup entries");
    for (key, v) in &speedups {
        assert!(
            v.is_finite() && *v > 0.0,
            "{name}: {key} is not a positive finite number: {v}"
        );
    }

    // The ns columns the speedups are derived from must be sane too.
    let ns_cols: Vec<&(String, f64)> = pairs.iter().filter(|(k, _)| k.ends_with("_ns")).collect();
    assert!(!ns_cols.is_empty(), "{name}: no *_ns columns");
    for (key, v) in &ns_cols {
        assert!(
            v.is_finite() && *v > 0.0,
            "{name}: {key} is not a positive finite number: {v}"
        );
    }
}

#[test]
fn bench_rewrite_report_is_sane() {
    check_report("BENCH_rewrite.json");
}

#[test]
fn bench_exec_report_is_sane() {
    check_report("BENCH_exec.json");
}

/// The morsel scheduler's worker policy (fall back to one worker rather
/// than over-partition) must make "more workers made the scan slower"
/// impossible: every committed `scan*` entry needs `speedup_p4 >=
/// speedup_p1` up to a 10% tolerance — p1 and p4 are always measured
/// independently, so on a clamped host where they run the same code the
/// two medians differ by ordinary run-to-run jitter (same tolerance as
/// `bench_report_exec --check-scan-scaling`). Each entry is one line in
/// the report, so the per-line numeric scan pairs the right columns
/// together.
#[test]
fn scan_workloads_never_scale_backwards() {
    let path = repo_root().join("BENCH_exec.json");
    let text = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("{} unreadable: {e}", path.display()));
    let mut checked = 0;
    for line in text.lines() {
        if !line.contains("\"id\": \"scan") {
            continue;
        }
        let pairs = numeric_pairs(line);
        let get = |name: &str| pairs.iter().find(|(k, _)| k == name).map(|&(_, v)| v);
        let (Some(p1), Some(p4)) = (get("speedup_p1"), get("speedup_p4")) else {
            panic!("scan entry missing speedup columns: {line}");
        };
        assert!(
            p4 >= p1 * 0.9,
            "scan entry scales backwards (speedup_p4 {p4} < 90% of speedup_p1 {p1}): {line}"
        );
        checked += 1;
    }
    assert!(
        checked >= 3,
        "expected at least the three scan workloads in BENCH_exec.json, found {checked}"
    );
}
