//! Morsel-scheduler differential suite: under every worker count the
//! morsel executor must return *byte-identical* results — same rows,
//! same order — as the seed reference interpreter. The fixtures target
//! the scheduler's failure modes specifically: skewed datasets whose
//! matches are concentrated in one morsel (an out-of-order merge would
//! reorder the output), inputs around the one-morsel boundary (empty,
//! one row, exactly `MORSEL_ROWS`), all-NULL filter columns (spilled
//! mirror + empty selections in most morsels), and `GROUP BY` with an
//! order-preserving `MakeList` collection, where the fused scan+nest
//! path must collect items in global row order even though morsels
//! complete out of order.

use eds_adt::Value;
use eds_core::Dbms;
use eds_engine::{eval_reference, EvalOptions, JoinMode, MORSEL_ROWS};
use eds_lera::Expr;

/// Worker counts around and past the pool boundary, with the columnar
/// path toggled both ways and both join algorithms.
fn morsel_configs() -> Vec<EvalOptions> {
    let mut out = Vec::new();
    for parallelism in [1usize, 3, 4, 8] {
        for columnar in [false, true] {
            for join in [JoinMode::NestedLoop, JoinMode::Hash] {
                out.push(EvalOptions {
                    parallelism,
                    columnar,
                    join,
                    // Mirror every derived input, however small, so the
                    // transient-mirror path runs under contention too.
                    derived_mirror_min: 0,
                    opt_level: Default::default(),
                    ..Default::default()
                });
            }
        }
    }
    out
}

fn assert_equivalent(id: &str, dbms: &Dbms, expr: &Expr) {
    for opts in morsel_configs() {
        let fast = eds_engine::eval_with(expr, &dbms.db, opts)
            .unwrap_or_else(|e| panic!("{id}: morsel executor failed under {opts:?}: {e}"))
            .0;
        let reference = eval_reference(expr, &dbms.db, opts)
            .unwrap_or_else(|e| panic!("{id}: reference executor failed under {opts:?}: {e}"));
        assert_eq!(
            fast.schema, reference.schema,
            "{id}: schema diverges under {opts:?}"
        );
        assert_eq!(
            fast.rows, reference.rows,
            "{id}: rows diverge from the reference interpreter under {opts:?}"
        );
    }
}

fn check(dbms: &Dbms, sql: &str) {
    let prepared = dbms.prepare(sql).unwrap();
    assert_equivalent(&format!("{sql} [raw]"), dbms, &prepared.expr);
    let rewritten = dbms.rewrite(&prepared).unwrap();
    assert_equivalent(&format!("{sql} [rewritten]"), dbms, &rewritten.expr);
}

/// Five-and-a-bit morsels whose matches are pathologically placed: the
/// `A = 1` rows all sit in morsel 0 plus one straggler in the final
/// partial morsel, so a scheduler that merged results in completion
/// order instead of morsel order would almost surely misplace the tail.
fn skewed_dbms() -> Dbms {
    let mut dbms = Dbms::new().unwrap();
    dbms.execute_ddl("TABLE SKEW (K : INT, G : INT, A : INT, Tag : CHAR);")
        .unwrap();
    let n = (5 * MORSEL_ROWS + 7) as i64;
    dbms.insert_all(
        "SKEW",
        (0..n).map(|i| {
            let a = if i < MORSEL_ROWS as i64 || i == n - 1 {
                1
            } else {
                1_000 + i
            };
            vec![
                Value::Int(i),
                Value::Int(i % 3),
                Value::Int(a),
                Value::str(if i % 5 == 0 { "hot" } else { "cold" }),
            ]
        }),
    )
    .unwrap();
    dbms
}

#[test]
fn skewed_filters_merge_in_row_order() {
    let dbms = skewed_dbms();
    for sql in [
        // All matches in morsel 0 plus one in the last partial morsel.
        "SELECT K FROM SKEW WHERE A = 1 ;",
        // Matches only outside morsel 0.
        "SELECT K FROM SKEW WHERE A > 1000 AND K < 6000 ;",
        // Interned-string kernel across all morsels.
        "SELECT K FROM SKEW WHERE Tag = 'hot' ;",
        // Dedup above a parallel scan.
        "SELECT DISTINCT Tag FROM SKEW WHERE A = 1 ;",
        // Predicate selecting nothing: every morsel's slot is empty.
        "SELECT K FROM SKEW WHERE A = -5 ;",
    ] {
        check(&dbms, sql);
    }
}

#[test]
fn fused_group_by_collects_in_global_row_order() {
    let dbms = skewed_dbms();
    // LIST keeps insertion order, so the fused scan+nest path must
    // append group members in global row order even though the morsels
    // that found them finish in any order. Every group spans every
    // morsel (G = K % 3).
    check(
        &dbms,
        "SELECT G, MakeList(K) FROM SKEW WHERE A >= 1 GROUP BY G ;",
    );
    // Skewed variant: list contents come from morsel 0 and the tail.
    check(
        &dbms,
        "SELECT G, MakeList(K) FROM SKEW WHERE A = 1 GROUP BY G ;",
    );
    // Set/bag collections sort their members — order-insensitive, but
    // the membership must still be exact.
    check(
        &dbms,
        "SELECT G, MakeSet(Tag) FROM SKEW WHERE K < 5000 GROUP BY G ;",
    );
}

#[test]
fn boundary_cardinalities_match_everywhere() {
    let mut dbms = Dbms::new().unwrap();
    dbms.execute_ddl(
        "TABLE EMPTY (K : INT, V : INT);\n\
         TABLE ONE (K : INT, V : INT);\n\
         TABLE EXACT (K : INT, V : INT);",
    )
    .unwrap();
    dbms.insert("ONE", vec![Value::Int(1), Value::Int(10)])
        .unwrap();
    // Exactly one morsel, and one row past it: the sequential fast path
    // on one side of the boundary, a two-morsel parallel run just above.
    dbms.insert_all(
        "EXACT",
        (0..=MORSEL_ROWS as i64).map(|i| vec![Value::Int(i), Value::Int(i % 7)]),
    )
    .unwrap();
    for sql in [
        "SELECT K FROM EMPTY WHERE V > 0 ;",
        "SELECT K, V FROM EMPTY ;",
        "SELECT K FROM ONE WHERE V = 10 ;",
        "SELECT K FROM ONE WHERE V = 11 ;",
        "SELECT K FROM EXACT WHERE V = 3 ;",
        "SELECT V, MakeList(K) FROM EXACT WHERE K >= 0 GROUP BY V ;",
    ] {
        check(&dbms, sql);
    }
}

#[test]
fn all_null_columns_match_under_every_worker_count() {
    let mut dbms = Dbms::new().unwrap();
    dbms.execute_ddl("TABLE HOLES (K : INT, V : INT);").unwrap();
    // Two-and-a-half morsels of NULLs in the filter column: the mirror
    // spills V, and most morsels produce empty selections.
    dbms.insert_all(
        "HOLES",
        (0..(2 * MORSEL_ROWS + MORSEL_ROWS / 2) as i64).map(|i| vec![Value::Int(i), Value::Null]),
    )
    .unwrap();
    check(&dbms, "SELECT K FROM HOLES WHERE V = 1 ;");
    check(&dbms, "SELECT K FROM HOLES WHERE V = NULL ;");
    check(&dbms, "SELECT K FROM HOLES WHERE K > 3000 ;");
}

#[test]
fn joins_over_morsel_sized_inputs_match() {
    let mut dbms = skewed_dbms();
    dbms.execute_ddl("TABLE DIM (G : INT, Name : CHAR);")
        .unwrap();
    for (g, name) in [(0, "zero"), (1, "one"), (2, "two")] {
        dbms.insert("DIM", vec![Value::Int(g), Value::str(name)])
            .unwrap();
    }
    check(
        &dbms,
        "SELECT K, Name FROM SKEW, DIM \
         WHERE SKEW.G = DIM.G AND A = 1 AND K < 100 ;",
    );
}
