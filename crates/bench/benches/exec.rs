//! Executor benchmark suite — the `BENCH_exec.json` workloads.
//!
//! Measures execution of *rewritten* plans (the post-optimizer hot
//! path): object-dereferencing filters, n-ary joins (nested-loop and
//! hash), merged view stacks, union pushdown output, recursive
//! fixpoints, and duplicate elimination. Every workload runs at
//! `parallelism` 1 and 4 (`<id>/p1`, `<id>/p4`); the committed
//! `crates/bench/baselines/before/exec.tsv` holds the same plans
//! measured on the seed tree-walking executor (`<id>/seq`).
//!
//! Before timing, each configuration asserts that the overhauled
//! executor returns *byte-identical* rows — values and order — to the
//! reference executor (the seed interpreter preserved in
//! `eds_engine::reference`).

use eds_bench::exec_workloads;
use eds_core::Dbms;
use eds_engine::{eval_reference, EvalOptions, JoinMode};
use eds_lera::Expr;
use eds_testkit::bench::{BenchmarkGroup, BenchmarkId, Criterion};
use eds_testkit::{criterion_group, criterion_main};

/// Assert the overhauled executor matches the reference executor
/// exactly (same rows, same order) for this plan and option set.
fn assert_matches_reference(dbms: &Dbms, expr: &Expr, opts: EvalOptions) {
    let fast = eds_engine::eval_with(expr, &dbms.db, opts)
        .expect("overhauled executor evaluates")
        .0;
    let reference = eval_reference(expr, &dbms.db, opts).expect("reference executor evaluates");
    assert_eq!(
        fast.rows, reference.rows,
        "executor output diverges from the reference interpreter"
    );
}

fn bench_both(
    group: &mut BenchmarkGroup<'_>,
    id: &str,
    dbms: &Dbms,
    expr: &Expr,
    base: EvalOptions,
) {
    for parallelism in [1usize, 4] {
        let opts = EvalOptions {
            parallelism,
            ..base
        };
        assert_matches_reference(dbms, expr, opts);
        group.bench_with_input(
            BenchmarkId::new(id, format!("p{parallelism}")),
            expr,
            |b, e| {
                b.iter(|| eds_engine::eval_with(e, &dbms.db, opts).unwrap());
            },
        );
    }
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("exec");
    group.sample_size(15);

    for (id, dbms, sql) in exec_workloads() {
        let prepared = dbms.prepare(&sql).unwrap();
        let rewritten = dbms.rewrite(&prepared).unwrap();
        bench_both(
            &mut group,
            id,
            &dbms,
            &rewritten.expr,
            EvalOptions::default(),
        );
    }

    // The film join again under the hash physical strategy.
    {
        let (_, dbms, sql) = exec_workloads().swap_remove(1);
        let opts = EvalOptions {
            join: JoinMode::Hash,
            ..Default::default()
        };
        let prepared = dbms.prepare(&sql).unwrap();
        let rewritten = dbms.rewrite(&prepared).unwrap();
        bench_both(&mut group, "film_join_hash", &dbms, &rewritten.expr, opts);
    }

    // Repeated rewrite of one identical prepared query — the plan-cache
    // workload (on the seed, every iteration pays the full rewrite
    // kernel; now the first iteration fills the cache and the rest are
    // a hash lookup).
    {
        let (_, dbms, sql) = exec_workloads().swap_remove(1);
        let prepared = dbms.prepare(&sql).unwrap();
        // The cached outcome must be the same plan the kernel produces.
        let cold = dbms.rewrite_uncached(&prepared).unwrap();
        let warm = dbms.rewrite(&prepared).unwrap();
        assert_eq!(cold.term, warm.term, "plan cache returned a different plan");
        let d = &dbms;
        group.bench_with_input(
            BenchmarkId::new("repeat_rewrite", "p1"),
            &prepared,
            |b, p| b.iter(|| d.rewrite(p).unwrap()),
        );
        let stats = dbms.rewriter.plan_cache_stats();
        assert!(
            stats.hits >= 1 && stats.misses >= 1,
            "repeat_rewrite must exercise the plan cache: {stats:?}"
        );
        eprintln!(
            "plan cache (cap {}): {} hits / {} misses / {} evictions",
            dbms.rewriter.plan_cache_cap(),
            stats.hits,
            stats.misses,
            stats.evictions
        );
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
