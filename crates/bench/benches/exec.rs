//! Executor benchmark suite — the `BENCH_exec.json` workloads.
//!
//! Measures execution of *rewritten* plans (the post-optimizer hot
//! path): object-dereferencing filters, n-ary joins (nested-loop and
//! hash), merged view stacks, union pushdown output, recursive
//! fixpoints, and duplicate elimination — plus million-row columnar
//! scans exercising the morsel scheduler end to end. Every workload
//! runs at `parallelism` 1 and 4 (`<id>/p1`, `<id>/p4`); the committed
//! `crates/bench/baselines/before/exec.tsv` holds the same plans
//! measured on the seed tree-walking executor (`<id>/seq`; the scan
//! workloads baseline against the sequential row-at-a-time path
//! instead — re-record with `EDS_EXEC_BASELINE=1`). The two
//! parallelism configurations are always measured independently — even
//! on hosts whose core count clamps the worker policy to one worker,
//! where they run the same code — so every committed number is a real
//! measurement; the report's scan-scaling gate applies a small
//! tolerance to absorb the resulting same-code noise.
//!
//! Before timing, each configuration asserts that the overhauled
//! executor returns *byte-identical* rows — values and order — to the
//! reference executor (the seed interpreter preserved in
//! `eds_engine::reference`).

use eds_bench::{
    exec_workloads, exec_workloads_1m, execute_many_workloads, literal_sql, opt_level_workloads,
};
use eds_core::{Dbms, OptLevel};
use eds_engine::{eval_reference, EvalOptions, JoinMode};
use eds_lera::Expr;
use eds_testkit::bench::{BenchmarkGroup, BenchmarkId, Criterion};
use eds_testkit::{criterion_group, criterion_main};

/// Assert the overhauled executor matches the reference executor
/// exactly (same rows, same order) for this plan and option set.
fn assert_matches_reference(dbms: &Dbms, expr: &Expr, opts: EvalOptions) {
    let fast = eds_engine::eval_with(expr, &dbms.db, opts)
        .expect("overhauled executor evaluates")
        .0;
    let reference = eval_reference(expr, &dbms.db, opts).expect("reference executor evaluates");
    assert_eq!(
        fast.rows, reference.rows,
        "executor output diverges from the reference interpreter"
    );
}

fn bench_both(
    group: &mut BenchmarkGroup<'_>,
    id: &str,
    dbms: &Dbms,
    expr: &Expr,
    base: EvalOptions,
) {
    for parallelism in [1usize, 4] {
        let opts = EvalOptions {
            parallelism,
            ..base
        };
        assert_matches_reference(dbms, expr, opts);
        group.bench_with_input(
            BenchmarkId::new(id, format!("p{parallelism}")),
            expr,
            |b, e| {
                b.iter(|| eds_engine::eval_with(e, &dbms.db, opts).unwrap());
            },
        );
    }
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("exec");
    group.sample_size(15);

    // `EDS_EXEC_ONLY=em` restricts the run to the prepared-statement
    // amortization workloads — they are microseconds-scale, so CI can
    // afford to *measure* them (rather than smoke them) and gate on the
    // committed floors with `bench_report_exec --check-prepared-floor`.
    let only_em = std::env::var("EDS_EXEC_ONLY").is_ok_and(|v| v == "em");

    if !only_em {
        exec_suite(&mut group);
        opt_level_suite(&mut group);
    }
    execute_many_suite(&mut group);
    if !only_em {
        repeat_rewrite_suite(&mut group);
    }
    group.finish();
}

fn exec_suite(group: &mut BenchmarkGroup<'_>) {
    for (id, dbms, sql) in exec_workloads() {
        let prepared = dbms.prepare(&sql).unwrap();
        let rewritten = dbms.rewrite(&prepared).unwrap();
        bench_both(group, id, &dbms, &rewritten.expr, EvalOptions::default());
    }

    // The film join again under the hash physical strategy.
    {
        let (_, dbms, sql) = exec_workloads().swap_remove(1);
        let opts = EvalOptions {
            join: JoinMode::Hash,
            ..Default::default()
        };
        let prepared = dbms.prepare(&sql).unwrap();
        let rewritten = dbms.rewrite(&prepared).unwrap();
        bench_both(group, "film_join_hash", &dbms, &rewritten.expr, opts);
    }

    // Million-row scans — the morsel scheduler's target workloads (489
    // morsels per scan; the 16 k scans above span only 8). One shared
    // table, several queries; fewer samples since each iteration walks
    // a million rows.
    {
        let (dbms, queries) = exec_workloads_1m();
        group.sample_size(10);
        // With `EDS_EXEC_BASELINE=1` the run also records each query
        // under `<id>/seq` on the sequential row-at-a-time path
        // (columnar off, parallelism 1) — the committed `before`
        // baseline for these workloads, like `EDS_COLUMNAR=0` was for
        // the 16 k scans.
        let record_baseline = std::env::var("EDS_EXEC_BASELINE").is_ok_and(|v| v != "0");
        for (id, sql) in queries {
            let prepared = dbms.prepare(&sql).unwrap();
            let rewritten = dbms.rewrite(&prepared).unwrap();
            if record_baseline {
                let opts = EvalOptions {
                    parallelism: 1,
                    columnar: false,
                    ..Default::default()
                };
                assert_matches_reference(&dbms, &rewritten.expr, opts);
                group.bench_with_input(BenchmarkId::new(id, "seq"), &rewritten.expr, |b, e| {
                    b.iter(|| eds_engine::eval_with(e, &dbms.db, opts).unwrap());
                });
            }
            bench_both(group, id, &dbms, &rewritten.expr, EvalOptions::default());
        }
        group.sample_size(15);
    }
}

/// Cost-guided plan choice: each workload's canonical plan has a
/// saturation-pessimal shape, so `OptLevel::Full`'s statistics-backed
/// exploration picks a different (cheaper) plan than `Simple`'s pure
/// saturation. The committed `<id>/seq` baseline is the **Simple** plan
/// on the default engine configuration (re-record with
/// `EDS_EXEC_BASELINE=1`); `<id>/p1`/`<id>/p4` measure the **Full**
/// plan — the before/after pair the `opt_level` kind reports, gated by
/// `crates/bench/baselines/opt_level_floors.tsv`. Both plans are
/// asserted row-equivalent before timing.
fn opt_level_suite(group: &mut BenchmarkGroup<'_>) {
    let record_baseline = std::env::var("EDS_EXEC_BASELINE").is_ok_and(|v| v != "0");
    for (id, mut dbms, sql) in opt_level_workloads() {
        let prepared = dbms.prepare(&sql).unwrap();
        dbms.set_opt_level(OptLevel::Simple);
        let simple = dbms.rewrite(&prepared).unwrap();
        dbms.set_opt_level(OptLevel::Full);
        let full = dbms.rewrite(&prepared).unwrap();
        let opts = EvalOptions::default();
        let mut simple_rows = eds_engine::eval_with(&simple.expr, &dbms.db, opts)
            .unwrap()
            .0
            .sorted_rows();
        let mut full_rows = eds_engine::eval_with(&full.expr, &dbms.db, opts)
            .unwrap()
            .0
            .sorted_rows();
        simple_rows.sort();
        full_rows.sort();
        assert_eq!(
            simple_rows, full_rows,
            "{id}: Full's chosen plan changes the result"
        );
        if record_baseline {
            assert_matches_reference(&dbms, &simple.expr, opts);
            group.bench_with_input(BenchmarkId::new(id, "seq"), &simple.expr, |b, e| {
                b.iter(|| eds_engine::eval_with(e, &dbms.db, opts).unwrap());
            });
        }
        bench_both(group, id, &dbms, &full.expr, opts);
    }
}

/// Prepared-statement amortization: prepare once, execute many with
/// varying binds. The committed `<id>/seq` baseline is the unprepared
/// path on the same tree — a full `query()` (parse, view expansion,
/// rewrite with a warm plan cache, term bridging, evaluation) per
/// execution with the binds substituted as literals; re-record with
/// `EDS_EXEC_BASELINE=1`. The `<id>/p1` measurement cycles
/// `PreparedStmt::execute` over the same bind arrays. Both sides are
/// asserted byte-identical before timing.
fn execute_many_suite(group: &mut BenchmarkGroup<'_>) {
    let record_baseline = std::env::var("EDS_EXEC_BASELINE").is_ok_and(|v| v != "0");
    for (id, dbms, sql, binds) in execute_many_workloads() {
        let stmt = dbms.prepare_stmt(&sql).unwrap();
        let literals: Vec<String> = binds.iter().map(|b| literal_sql(&sql, b)).collect();
        for (b, lit) in binds.iter().zip(&literals) {
            assert_eq!(
                stmt.execute(&dbms, b).unwrap().rows,
                dbms.query(lit).unwrap().rows,
                "{id}: prepared execution diverges from the literal query for {b:?}"
            );
        }
        if record_baseline {
            group.bench_with_input(BenchmarkId::new(id, "seq"), &literals, |bch, ls| {
                let mut i = 0usize;
                bch.iter(|| {
                    let rel = dbms.query(&ls[i % ls.len()]).unwrap();
                    i += 1;
                    rel
                });
            });
        }
        group.bench_with_input(BenchmarkId::new(id, "p1"), &binds, |bch, bs| {
            let mut i = 0usize;
            bch.iter(|| {
                let rel = stmt.execute(&dbms, &bs[i % bs.len()]).unwrap();
                i += 1;
                rel
            });
        });
    }
}

/// Repeated rewrite of one identical prepared query — the plan-cache
/// workload (on the seed, every iteration pays the full rewrite
/// kernel; now the first iteration fills the cache and the rest are
/// a hash lookup).
fn repeat_rewrite_suite(group: &mut BenchmarkGroup<'_>) {
    {
        let (_, dbms, sql) = exec_workloads().swap_remove(1);
        let prepared = dbms.prepare(&sql).unwrap();
        // The cached outcome must be the same plan the kernel produces.
        let cold = dbms.rewrite_uncached(&prepared).unwrap();
        let warm = dbms.rewrite(&prepared).unwrap();
        assert_eq!(cold.term, warm.term, "plan cache returned a different plan");
        let d = &dbms;
        group.bench_with_input(
            BenchmarkId::new("repeat_rewrite", "p1"),
            &prepared,
            |b, p| b.iter(|| d.rewrite(p).unwrap()),
        );
        let stats = dbms.rewriter.plan_cache_stats();
        assert!(
            stats.hits >= 1 && stats.misses >= 1,
            "repeat_rewrite must exercise the plan cache: {stats:?}"
        );
        eprintln!(
            "plan cache (cap {}): {} hits / {} misses / {} evictions",
            dbms.rewriter.plan_cache_cap(),
            stats.hits,
            stats.misses,
            stats.evictions
        );
    }
}

criterion_group!(benches, bench);
criterion_main!(benches);
