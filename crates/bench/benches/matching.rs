//! Experiment E14 — the term-rewriting machinery itself: matcher cost
//! under collection variables (segment enumeration), rule-application
//! throughput, and bounded saturation on a looping rule set.

use eds_rewrite::{
    all_matches, apply_block, parse_source, BasicEnv, Block, Limit, MethodRegistry, RuleSet,
    SourceItem, Term,
};
use eds_testkit::bench::{BenchmarkId, Criterion};
use eds_testkit::{criterion_group, criterion_main};

fn wide_list(n: usize) -> Term {
    Term::list((0..n).map(|i| Term::atom(format!("R{i}"))).collect())
}

fn series() {
    println!("\n# E14 matcher: alternatives for LIST(x*, v, y*) vs subject width");
    println!("{:<7} {:>12}", "width", "matches");
    let pattern = Term::list(vec![Term::seq("x"), Term::var("v"), Term::seq("y")]);
    for n in [4usize, 16, 64, 256] {
        let subject = wide_list(n);
        let matches = all_matches(&pattern, &subject);
        println!("{:<7} {:>12}", n, matches.len());
        assert_eq!(matches.len(), n);
    }

    println!("\n# E14 bounded saturation: looping rule stopped by the block limit");
    let items = parse_source(
        "Grow : G(x) / --> G(F(x)) / ;\n\
         block(b, {Grow}, 1000) ;",
    )
    .unwrap();
    let mut rules = RuleSet::new();
    let mut block: Option<Block> = None;
    for item in items {
        match item {
            SourceItem::Rule(r) => {
                rules.add(r);
            }
            SourceItem::Block(b) => block = Some(b),
            _ => {}
        }
    }
    let block = block.unwrap();
    let env = BasicEnv::new();
    let methods = MethodRegistry::with_builtins();
    let out = apply_block(
        &rules,
        &block,
        &methods,
        &env,
        Term::app("G", vec![Term::int(0)]),
        false,
    )
    .unwrap();
    println!(
        "limit=1000: applications={} budget_exhausted={} final_size={}",
        out.stats.applications,
        out.budget_exhausted,
        out.term.size()
    );
    println!();
}

fn bench(c: &mut Criterion) {
    series();
    let mut group = c.benchmark_group("matching");
    group.sample_size(30);

    let pattern = Term::list(vec![Term::seq("x"), Term::var("v"), Term::seq("y")]);
    for n in [8usize, 64, 256] {
        let subject = wide_list(n);
        group.bench_with_input(BenchmarkId::new("segments", n), &subject, |b, s| {
            b.iter(|| all_matches(&pattern, s).len());
        });
    }

    // Commutative SET matching.
    let set_pattern = Term::set(vec![
        Term::seq("x"),
        Term::app("UNION", vec![Term::var("z")]),
    ]);
    for n in [4usize, 12] {
        let mut elems: Vec<Term> = (0..n).map(|i| Term::atom(format!("R{i}"))).collect();
        elems.push(Term::app("UNION", vec![Term::atom("NESTED")]));
        let subject = Term::set(elems);
        group.bench_with_input(BenchmarkId::new("multiset", n), &subject, |b, s| {
            b.iter(|| all_matches(&set_pattern, s).len());
        });
    }

    // Saturation with a decreasing rule.
    let items = parse_source(
        "Unwrap : F(x) / --> x / ;\n\
         block(b, {Unwrap}, INF) ;",
    )
    .unwrap();
    let mut rules = RuleSet::new();
    let mut block = Block {
        name: "b".into(),
        rules: vec![],
        limit: Limit::Infinite,
    };
    for item in items {
        match item {
            SourceItem::Rule(r) => {
                rules.add(r);
            }
            SourceItem::Block(b) => block = b,
            _ => {}
        }
    }
    let env = BasicEnv::new();
    let methods = MethodRegistry::with_builtins();
    let mut nested = Term::int(0);
    for _ in 0..40 {
        nested = Term::app("F", vec![nested]);
    }
    group.bench_function("saturation_40_levels", |b| {
        b.iter(|| {
            apply_block(&rules, &block, &methods, &env, nested.clone(), false)
                .unwrap()
                .stats
                .applications
        });
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
