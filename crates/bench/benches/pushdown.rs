//! Experiment F8 — permutation rules: search through union and search
//! through nest (Figure 8). Measures engine work with and without the
//! pushing rules across workload scale.

use eds_bench::{nested_view, union_view};
use eds_testkit::bench::{BenchmarkId, Criterion};
use eds_testkit::{criterion_group, criterion_main};

fn series() {
    println!("\n# F8a search-through-union: branches sweep (200 rows/branch)");
    println!(
        "{:<9} {:>14} {:>14} {:>8}",
        "branches", "combos_before", "combos_after", "ratio"
    );
    for branches in [2usize, 4, 8] {
        let dbms = union_view(branches, 200);
        let sql = "SELECT K FROM ALLPARTS WHERE K = 7 ;";
        let prepared = dbms.prepare(sql).unwrap();
        let rewritten = dbms.rewrite(&prepared).unwrap();
        let (r1, before) = dbms.run_expr_with_stats(&prepared.expr).unwrap();
        let (r2, after) = dbms.run_expr_with_stats(&rewritten.expr).unwrap();
        assert!(r1.set_eq(&r2));
        println!(
            "{:<9} {:>14} {:>14} {:>8.2}",
            branches,
            before.combinations_tried,
            after.combinations_tried,
            before.combinations_tried as f64 / after.combinations_tried.max(1) as f64
        );
    }

    println!("\n# F8b search-through-nest: group-count sweep (20 items/group)");
    println!(
        "{:<8} {:>14} {:>14} {:>12} {:>12}",
        "groups", "rows_before", "rows_after", "nest_before", "nest_after"
    );
    for groups in [50i64, 200, 800] {
        let dbms = nested_view(groups, 20);
        let sql = "SELECT G FROM GROUPED WHERE G = 3 ;";
        let prepared = dbms.prepare(sql).unwrap();
        let rewritten = dbms.rewrite(&prepared).unwrap();
        let (r1, before) = dbms.run_expr_with_stats(&prepared.expr).unwrap();
        let (r2, after) = dbms.run_expr_with_stats(&rewritten.expr).unwrap();
        assert!(r1.set_eq(&r2));
        println!(
            "{:<8} {:>14} {:>14} {:>12} {:>12}",
            groups,
            before.rows_emitted,
            after.rows_emitted,
            before.combinations_tried,
            after.combinations_tried,
        );
    }
    println!("\n# F8c physical ablation: rewrite benefit under nested-loop vs hash joins");
    println!(
        "{:<12} {:>16} {:>16}",
        "join mode", "combos_unrewritten", "combos_rewritten"
    );
    {
        // Two-view equi-join with a selective predicate (300×300 rows):
        // the merging rewrite helps under BOTH physical strategies, and
        // hash joins help under BOTH logical plans — orthogonal wins.
        use eds_engine::{EvalOptions, JoinMode};
        let mut dbms = eds_core::Dbms::new().unwrap();
        dbms.execute_ddl(
            "TABLE R (K : INT, V : INT);
             TABLE S (K : INT, W : INT);
             CREATE VIEW RV (K, V) AS SELECT K, V FROM R WHERE V >= 0 ;
             CREATE VIEW SV (K, W) AS SELECT K, W FROM S WHERE W >= 0 ;",
        )
        .unwrap();
        for i in 0..300i64 {
            dbms.insert("R", vec![i.into(), (i % 90).into()]).unwrap();
            dbms.insert("S", vec![(i % 120).into(), (i % 45).into()])
                .unwrap();
        }
        let sql = "SELECT RV.V FROM RV, SV WHERE RV.K = SV.K AND SV.W = 7 ;";
        let prepared = dbms.prepare(sql).unwrap();
        let rewritten = dbms.rewrite(&prepared).unwrap();
        for (label, mode) in [
            ("nested-loop", JoinMode::NestedLoop),
            ("hash", JoinMode::Hash),
        ] {
            dbms.eval_options = EvalOptions {
                join: mode,
                ..Default::default()
            };
            let (r1, s1) = dbms.run_expr_with_stats(&prepared.expr).unwrap();
            let (r2, s2) = dbms.run_expr_with_stats(&rewritten.expr).unwrap();
            assert!(r1.set_eq(&r2));
            println!(
                "{:<12} {:>16} {:>16}",
                label, s1.combinations_tried, s2.combinations_tried
            );
        }
    }
    println!();
}

fn bench(c: &mut Criterion) {
    series();
    let mut group = c.benchmark_group("pushdown");
    group.sample_size(15);

    let dbms = union_view(4, 200);
    let prepared = dbms
        .prepare("SELECT K FROM ALLPARTS WHERE K = 7 ;")
        .unwrap();
    let rewritten = dbms.rewrite(&prepared).unwrap();
    group.bench_function("union/exec_unpushed", |b| {
        b.iter(|| dbms.run_expr(&prepared.expr).unwrap());
    });
    group.bench_function("union/exec_pushed", |b| {
        b.iter(|| dbms.run_expr(&rewritten.expr).unwrap());
    });

    let dbms = nested_view(200, 20);
    let prepared = dbms.prepare("SELECT G FROM GROUPED WHERE G = 3 ;").unwrap();
    let rewritten = dbms.rewrite(&prepared).unwrap();
    group.bench_function("nest/exec_unpushed", |b| {
        b.iter(|| dbms.run_expr(&prepared.expr).unwrap());
    });
    group.bench_function("nest/exec_pushed", |b| {
        b.iter(|| dbms.run_expr(&rewritten.expr).unwrap());
    });

    for branches in [2usize, 8] {
        let dbms = union_view(branches, 10);
        let prepared = dbms
            .prepare("SELECT K FROM ALLPARTS WHERE K = 7 ;")
            .unwrap();
        group.bench_with_input(
            BenchmarkId::new("rewrite_time", branches),
            &branches,
            |b, _| b.iter(|| dbms.rewrite_uncached(&prepared).unwrap()),
        );
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
