//! Experiment F3/F7 — operation merging (Figure 7).
//!
//! Sweeps view-stack depth and reports, per depth: plan operator count
//! before/after rewriting, estimated plan cost, engine work, and the
//! rewrite time itself. The paper's qualitative claim: merging "reduces
//! the size of a LERA program" and "provides more opportunity to find
//! the best access plan".

use eds_bench::view_stack;
use eds_lera::CostModel;
use eds_testkit::bench::{BenchmarkId, Criterion};
use eds_testkit::{criterion_group, criterion_main};

fn series() {
    println!("\n# F7 operation merging: view-stack depth sweep (1000 base rows)");
    println!(
        "{:<6} {:>10} {:>10} {:>12} {:>12} {:>12} {:>12}",
        "depth",
        "ops_before",
        "ops_after",
        "cost_before",
        "cost_after",
        "work_before",
        "work_after"
    );
    let mut model = CostModel::new();
    model.set_card("BASE", 1000.0);
    for depth in [1usize, 2, 4, 8, 12] {
        let dbms = view_stack(depth, 1000);
        let sql = format!("SELECT K FROM V{depth} WHERE B = 3 ;");
        let prepared = dbms.prepare(&sql).unwrap();
        let rewritten = dbms.rewrite(&prepared).unwrap();
        let (_, before) = dbms.run_expr_with_stats(&prepared.expr).unwrap();
        let (_, after) = dbms.run_expr_with_stats(&rewritten.expr).unwrap();
        println!(
            "{:<6} {:>10} {:>10} {:>12.0} {:>12.0} {:>12} {:>12}",
            depth,
            prepared.expr.node_count(),
            rewritten.expr.node_count(),
            model.estimate(&prepared.expr).cost,
            model.estimate(&rewritten.expr).cost,
            before.rows_emitted,
            after.rows_emitted,
        );
    }
    println!();
}

fn bench(c: &mut Criterion) {
    series();
    let mut group = c.benchmark_group("merging");
    group.sample_size(20);
    for depth in [2usize, 8] {
        let dbms = view_stack(depth, 100);
        let sql = format!("SELECT K FROM V{depth} WHERE B = 3 ;");
        let prepared = dbms.prepare(&sql).unwrap();
        group.bench_with_input(BenchmarkId::new("rewrite", depth), &depth, |b, _| {
            b.iter(|| dbms.rewrite_uncached(&prepared).unwrap());
        });
        let rewritten = dbms.rewrite(&prepared).unwrap();
        group.bench_with_input(BenchmarkId::new("exec_unmerged", depth), &depth, |b, _| {
            b.iter(|| dbms.run_expr(&prepared.expr).unwrap());
        });
        group.bench_with_input(BenchmarkId::new("exec_merged", depth), &depth, |b, _| {
            b.iter(|| dbms.run_expr(&rewritten.expr).unwrap());
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
