//! Experiment E13 — the block-limit trade-off of the paper's conclusion:
//! "if the application limit is too high [rules] may lead to long
//! processing. If one stops too early (low limit), then the logical
//! optimization can actually complicate the query."
//!
//! Sweeps a uniform limit over all blocks for a simple (key lookup) and
//! a complex (view + recursion + semantic) query, reporting rewrite
//! effort and resulting execution work.

use eds_bench::{graph_dbms, product_dbms};
use eds_rewrite::Limit;
use eds_testkit::bench::{BenchmarkId, Criterion};
use eds_testkit::{criterion_group, criterion_main};

fn sweep(label: &str, mut dbms: eds_core::Dbms, sql: &str) {
    println!("\n# E13 limit sweep — {label}: {sql}");
    println!(
        "{:<8} {:>14} {:>14} {:>14} {:>6}",
        "limit", "checks", "applications", "exec_combos", "rows"
    );
    for limit in [0u64, 2, 5, 10, 25, 100, u64::MAX] {
        let l = if limit == u64::MAX {
            Limit::Infinite
        } else {
            Limit::Finite(limit)
        };
        dbms.rewriter.set_all_limits(l);
        let prepared = dbms.prepare(sql).unwrap();
        let rewritten = dbms.rewrite(&prepared).unwrap();
        let (rel, stats) = dbms.run_expr_with_stats(&rewritten.expr).unwrap();
        let shown = if limit == u64::MAX {
            "INF".to_owned()
        } else {
            limit.to_string()
        };
        println!(
            "{:<8} {:>14} {:>14} {:>14} {:>6}",
            shown,
            rewritten.stats.condition_checks,
            rewritten.stats.applications,
            stats.combinations_tried,
            rel.len()
        );
    }
}

fn series() {
    sweep(
        "simple query",
        product_dbms(2_000),
        "SELECT Id FROM PRODUCT WHERE Id = 7 ;",
    );
    sweep(
        "complex query",
        graph_dbms(40, 10, 3),
        "SELECT Dst FROM TC WHERE Src = 30 ;",
    );
    println!();
}

fn bench(c: &mut Criterion) {
    series();
    let mut group = c.benchmark_group("limits");
    group.sample_size(15);
    let mut dbms = graph_dbms(30, 8, 3);
    let sql = "SELECT Dst FROM TC WHERE Src = 20 ;";
    for limit in [0u64, 10, 1000] {
        dbms.rewriter.set_all_limits(Limit::Finite(limit));
        let prepared = dbms.prepare(sql).unwrap();
        let d = &dbms;
        group.bench_with_input(BenchmarkId::new("rewrite", limit), &prepared, |b, p| {
            b.iter(|| d.rewrite_uncached(p).unwrap());
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
