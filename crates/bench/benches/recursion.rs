//! Experiment F9 — fixpoint reduction: the Alexander invocation rule
//! (Figure 9), crossed with naive vs semi-naive fixpoint evaluation.
//! Graph-size sweep for the bound query `TC(Src = c)`.

use eds_bench::graph_dbms;
use eds_engine::{EvalOptions, FixMode, FixOptions};
use eds_testkit::bench::{BenchmarkId, Criterion};
use eds_testkit::{criterion_group, criterion_main};

fn opts(mode: FixMode) -> EvalOptions {
    EvalOptions {
        fix: FixOptions {
            mode,
            max_iterations: 100_000,
        },
        ..Default::default()
    }
}

fn series() {
    println!("\n# F9 fixpoint reduction: combinations tried, TC(Src = n-10)");
    println!(
        "{:<7} {:>14} {:>14} {:>14} {:>14}",
        "nodes", "naive", "seminaive", "naive+alex", "semi+alex"
    );
    for nodes in [20i64, 40, 60] {
        let mut dbms = graph_dbms(nodes, nodes / 4, 7);
        let sql = format!("SELECT Dst FROM TC WHERE Src = {} ;", nodes - 10);
        let prepared = dbms.prepare(&sql).unwrap();
        let rewritten = dbms.rewrite(&prepared).unwrap();

        let run = |expr: &eds_lera::Expr, mode: FixMode, dbms: &mut eds_core::Dbms| {
            dbms.eval_options = opts(mode);
            let (rel, stats) = dbms.run_expr_with_stats(expr).unwrap();
            (rel.deduped().len(), stats.combinations_tried)
        };
        let (n1, a) = run(&prepared.expr, FixMode::Naive, &mut dbms);
        let (n2, b) = run(&prepared.expr, FixMode::SemiNaive, &mut dbms);
        let (n3, c) = run(&rewritten.expr, FixMode::Naive, &mut dbms);
        let (n4, d) = run(&rewritten.expr, FixMode::SemiNaive, &mut dbms);
        assert!(n1 == n2 && n2 == n3 && n3 == n4, "all strategies agree");
        println!("{nodes:<7} {a:>14} {b:>14} {c:>14} {d:>14}");
    }
    println!();
}

fn bench(c: &mut Criterion) {
    series();
    let mut group = c.benchmark_group("recursion");
    group.sample_size(10);

    let nodes = 40i64;
    let mut dbms = graph_dbms(nodes, 10, 7);
    let sql = format!("SELECT Dst FROM TC WHERE Src = {} ;", nodes - 10);
    let prepared = dbms.prepare(&sql).unwrap();
    let rewritten = dbms.rewrite(&prepared).unwrap();

    for (label, expr, mode) in [
        ("naive_base", prepared.expr.clone(), FixMode::Naive),
        ("seminaive_base", prepared.expr.clone(), FixMode::SemiNaive),
        ("naive_alexander", rewritten.expr.clone(), FixMode::Naive),
        (
            "seminaive_alexander",
            rewritten.expr.clone(),
            FixMode::SemiNaive,
        ),
    ] {
        dbms.eval_options = opts(mode);
        let d = &dbms;
        group.bench_with_input(BenchmarkId::new("exec", label), &expr, |b, e| {
            b.iter(|| d.run_expr(e).unwrap());
        });
    }

    group.bench_function("rewrite_time", |b| {
        b.iter(|| dbms.rewrite_uncached(&prepared).unwrap());
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
