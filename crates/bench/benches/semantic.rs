//! Experiment F10/F11 — semantic rewriting: integrity-constraint
//! addition, equality substitution, and the inconsistency-detection
//! payoff ("the potential time saving that can be realized with proper
//! use of inference rules").

use eds_bench::product_dbms;
use eds_testkit::bench::{BenchmarkId, Criterion};
use eds_testkit::{criterion_group, criterion_main};

fn series() {
    println!("\n# F10/F11 semantic optimization: inconsistent vs consistent queries");
    println!(
        "{:<10} {:<24} {:>14} {:>14} {:>6}",
        "rows", "query", "combos_before", "combos_after", "rows"
    );
    for rows in [1_000i64, 10_000] {
        let dbms = product_dbms(rows);
        let cases = [
            ("bad grade", "SELECT Id FROM PRODUCT WHERE Grade = 'D' ;"),
            (
                "range clash",
                "SELECT Id FROM PRODUCT WHERE Price = Weight AND Price > 100 AND Weight < 7 ;",
            ),
            ("consistent", "SELECT Id FROM PRODUCT WHERE Grade = 'A' ;"),
        ];
        for (label, sql) in cases {
            let prepared = dbms.prepare(sql).unwrap();
            let rewritten = dbms.rewrite(&prepared).unwrap();
            let (r1, before) = dbms.run_expr_with_stats(&prepared.expr).unwrap();
            let (r2, after) = dbms.run_expr_with_stats(&rewritten.expr).unwrap();
            assert!(r1.set_eq(&r2));
            println!(
                "{:<10} {:<24} {:>14} {:>14} {:>6}",
                rows,
                label,
                before.combinations_tried,
                after.combinations_tried,
                r2.len()
            );
        }
    }
    println!();
}

fn bench(c: &mut Criterion) {
    series();
    let mut group = c.benchmark_group("semantic");
    group.sample_size(15);
    let dbms = product_dbms(10_000);

    for (label, sql) in [
        ("inconsistent", "SELECT Id FROM PRODUCT WHERE Grade = 'D' ;"),
        ("consistent", "SELECT Id FROM PRODUCT WHERE Grade = 'A' ;"),
    ] {
        let prepared = dbms.prepare(sql).unwrap();
        let rewritten = dbms.rewrite(&prepared).unwrap();
        group.bench_with_input(BenchmarkId::new("rewrite", label), &prepared, |b, p| {
            b.iter(|| dbms.rewrite_uncached(p).unwrap());
        });
        group.bench_with_input(
            BenchmarkId::new("exec_unoptimized", label),
            &prepared.expr,
            |b, e| b.iter(|| dbms.run_expr(e).unwrap()),
        );
        group.bench_with_input(
            BenchmarkId::new("exec_optimized", label),
            &rewritten.expr,
            |b, e| b.iter(|| dbms.run_expr(e).unwrap()),
        );
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
