//! Experiment F1 — the generic-ADT collection library (Figure 1):
//! microbenchmarks of the built-in collection functions the engine and
//! the constraint evaluator call.

use eds_adt::{collection, EvalContext, FunctionRegistry, ObjectStore, TypeRegistry, Value};
use eds_testkit::bench::{BenchmarkId, Criterion};
use eds_testkit::{criterion_group, criterion_main};

fn set_of(n: i64) -> Value {
    Value::set((0..n).map(Value::Int).collect())
}

fn series() {
    println!("\n# F1 collection ADT sanity (Figure 1 functions exercised)");
    let a = set_of(100);
    let b = set_of(50);
    for (name, v) in [
        ("UNION", collection::union(&a, &b).unwrap()),
        ("INTERSECTION", collection::intersection(&a, &b).unwrap()),
        ("DIFFERENCE", collection::difference(&a, &b).unwrap()),
    ] {
        let (_, elems) = v.as_coll().unwrap();
        println!("{name:<14} |100 op 50| = {}", elems.len());
    }
    println!();
}

fn bench(c: &mut Criterion) {
    series();
    let mut group = c.benchmark_group("adt_ops");
    group.sample_size(50);

    for n in [16i64, 256, 4096] {
        let a = set_of(n);
        let b = set_of(n / 2);
        group.bench_with_input(BenchmarkId::new("set_union", n), &n, |bch, _| {
            bch.iter(|| collection::union(&a, &b).unwrap());
        });
        group.bench_with_input(BenchmarkId::new("set_member", n), &n, |bch, _| {
            bch.iter(|| collection::member(&Value::Int(n - 1), &a).unwrap());
        });
        group.bench_with_input(BenchmarkId::new("include", n), &n, |bch, _| {
            bch.iter(|| collection::include(&b, &a).unwrap());
        });
    }

    // Dispatch through the registry (the path queries take).
    let reg = FunctionRegistry::with_builtins();
    let objects = ObjectStore::new();
    let types = TypeRegistry::new();
    let ctx = EvalContext {
        objects: &objects,
        types: &types,
    };
    let coll = set_of(256);
    group.bench_function("registry_member", |b| {
        b.iter(|| {
            reg.call("MEMBER", &[Value::Int(7), coll.clone()], &ctx)
                .unwrap()
        });
    });
    group.bench_function("registry_arith", |b| {
        b.iter(|| {
            reg.call("+", &[Value::Int(3), Value::Int(4)], &ctx)
                .unwrap()
        });
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
