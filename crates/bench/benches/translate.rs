//! Front-end throughput: ESQL parsing and ESQL → LERA translation of the
//! paper's Figure-3/4/5 queries (the canonical-form production the
//! rewriter consumes).

use eds_bench::film_dbms;
use eds_esql::parse_statements;
use eds_testkit::bench::Criterion;
use eds_testkit::{criterion_group, criterion_main};

const FIG3: &str = "SELECT Title, Categories, Salary(Refactor) \
                    FROM FILM, APPEARS_IN \
                    WHERE FILM.Numf = APPEARS_IN.Numf \
                    AND Name(Refactor) = 'Quinn' \
                    AND MEMBER('Adventure', Categories) ;";

fn series() {
    let dbms = film_dbms(50, 20, 3);
    let prepared = dbms.prepare(FIG3).unwrap();
    println!("\n# F3 canonical translation (compare paper Section 3.1):");
    println!("{}", prepared.expr);
    println!();
}

fn bench(c: &mut Criterion) {
    series();
    let mut dbms = film_dbms(50, 20, 3);
    dbms.execute_ddl(
        "CREATE VIEW FilmActors (Title, Categories, Actors) AS
           SELECT Title, Categories, MakeSet(Refactor)
           FROM FILM, APPEARS_IN WHERE FILM.Numf = APPEARS_IN.Numf
           GROUP BY Title, Categories ;
         CREATE VIEW BETTER_THAN (Refactor1, Refactor2) AS
           ( SELECT Refactor1, Refactor2 FROM DOMINATE
             UNION
             SELECT B1.Refactor1, B2.Refactor2
             FROM BETTER_THAN B1, BETTER_THAN B2
             WHERE B1.Refactor2 = B2.Refactor1 ) ;",
    )
    .unwrap();

    let fig4 = "SELECT Title FROM FilmActors \
                WHERE MEMBER('Adventure', Categories) AND ALL (Salary(Actors) > 10_000) ;";
    let fig5 = "SELECT Name(Refactor1) FROM BETTER_THAN WHERE Name(Refactor2) = 'Quinn' ;";

    let mut group = c.benchmark_group("translate");
    group.sample_size(50);
    group.bench_function("parse_fig3", |b| b.iter(|| parse_statements(FIG3).unwrap()));
    for (label, sql) in [("fig3", FIG3), ("fig4", fig4), ("fig5", fig5)] {
        group.bench_function(format!("prepare_{label}"), |b| {
            b.iter(|| dbms.prepare(sql).unwrap());
        });
        let prepared = dbms.prepare(sql).unwrap();
        group.bench_function(format!("rewrite_{label}"), |b| {
            b.iter(|| dbms.rewrite_uncached(&prepared).unwrap());
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
