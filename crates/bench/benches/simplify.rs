//! Experiment F12 — predicate simplification: constant-folding width
//! sweep (how rewrite time scales with qualification size) and the
//! execution payoff of folded qualifications.

use eds_bench::{simple_table, wide_conjunction_sql};
use eds_testkit::bench::{BenchmarkId, Criterion};
use eds_testkit::{criterion_group, criterion_main};

fn series() {
    println!("\n# F12 predicate simplification: conjunct-width sweep (500 rows)");
    println!(
        "{:<7} {:>14} {:>14} {:>12} {:>12}",
        "width", "conj_before", "conj_after", "checks", "applications"
    );
    let dbms = simple_table(500);
    for n in [1usize, 4, 8, 16] {
        let sql = wide_conjunction_sql(n);
        let prepared = dbms.prepare(&sql).unwrap();
        let rewritten = dbms.rewrite(&prepared).unwrap();
        let count = |e: &eds_lera::Expr| match e {
            eds_lera::Expr::Search { pred, .. } => pred.conjuncts().len(),
            _ => 0,
        };
        println!(
            "{:<7} {:>14} {:>14} {:>12} {:>12}",
            n,
            count(&prepared.expr),
            count(&rewritten.expr),
            rewritten.stats.condition_checks,
            rewritten.stats.applications,
        );
    }
    println!();
}

fn bench(c: &mut Criterion) {
    series();
    let mut group = c.benchmark_group("simplify");
    group.sample_size(20);
    let dbms = simple_table(500);
    for n in [4usize, 16] {
        let sql = wide_conjunction_sql(n);
        let prepared = dbms.prepare(&sql).unwrap();
        group.bench_with_input(BenchmarkId::new("rewrite", n), &prepared, |b, p| {
            b.iter(|| dbms.rewrite_uncached(p).unwrap());
        });
        let rewritten = dbms.rewrite(&prepared).unwrap();
        group.bench_with_input(
            BenchmarkId::new("exec_unfolded", n),
            &prepared.expr,
            |b, e| b.iter(|| dbms.run_expr(e).unwrap()),
        );
        group.bench_with_input(
            BenchmarkId::new("exec_folded", n),
            &rewritten.expr,
            |b, e| b.iter(|| dbms.run_expr(e).unwrap()),
        );
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
