//! ESQL lexer.

use crate::error::{EsqlError, EsqlResult};

/// A lexical token.
#[derive(Debug, Clone, PartialEq)]
pub enum Tok {
    /// Identifier or keyword (original spelling preserved; keyword checks
    /// are case-insensitive).
    Ident(String),
    /// Integer literal.
    Int(i64),
    /// Real literal.
    Real(f64),
    /// String literal (single-quoted, `''` escape).
    Str(String),
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `,`
    Comma,
    /// `;`
    Semi,
    /// `.`
    Dot,
    /// `:`
    Colon,
    /// `=`
    Eq,
    /// `<`
    Lt,
    /// `>`
    Gt,
    /// `<=`
    Le,
    /// `>=`
    Ge,
    /// `<>` or `!=`
    Ne,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `*`
    Star,
    /// `/`
    Slash,
    /// `?` — a positional statement parameter.
    Question,
    /// End of input.
    Eof,
}

impl Tok {
    /// Keyword test (case-insensitive; only meaningful for `Ident`).
    pub fn is_kw(&self, kw: &str) -> bool {
        matches!(self, Tok::Ident(s) if s.eq_ignore_ascii_case(kw))
    }
}

/// A token with its source position.
#[derive(Debug, Clone)]
pub struct Spanned {
    /// The token.
    pub tok: Tok,
    /// 1-based line.
    pub line: usize,
    /// 1-based column.
    pub column: usize,
}

/// Tokenize ESQL source. Comments run from `--` to end of line.
pub fn lex(src: &str) -> EsqlResult<Vec<Spanned>> {
    let chars: Vec<char> = src.chars().collect();
    let mut out = Vec::new();
    let mut i = 0;
    let mut line = 1;
    let mut col = 1;

    macro_rules! push {
        ($tok:expr, $len:expr) => {{
            out.push(Spanned {
                tok: $tok,
                line,
                column: col,
            });
            i += $len;
            col += $len;
        }};
    }

    while i < chars.len() {
        let c = chars[i];
        match c {
            '\n' => {
                i += 1;
                line += 1;
                col = 1;
            }
            c if c.is_whitespace() => {
                i += 1;
                col += 1;
            }
            '-' if chars.get(i + 1) == Some(&'-') => {
                while i < chars.len() && chars[i] != '\n' {
                    i += 1;
                }
            }
            '(' => push!(Tok::LParen, 1),
            ')' => push!(Tok::RParen, 1),
            ',' => push!(Tok::Comma, 1),
            ';' => push!(Tok::Semi, 1),
            '.' => push!(Tok::Dot, 1),
            ':' => push!(Tok::Colon, 1),
            '=' => push!(Tok::Eq, 1),
            '+' => push!(Tok::Plus, 1),
            '-' => push!(Tok::Minus, 1),
            '*' => push!(Tok::Star, 1),
            '/' => push!(Tok::Slash, 1),
            '?' => push!(Tok::Question, 1),
            '!' if chars.get(i + 1) == Some(&'=') => push!(Tok::Ne, 2),
            '<' => match chars.get(i + 1) {
                Some('=') => push!(Tok::Le, 2),
                Some('>') => push!(Tok::Ne, 2),
                _ => push!(Tok::Lt, 1),
            },
            '>' => match chars.get(i + 1) {
                Some('=') => push!(Tok::Ge, 2),
                _ => push!(Tok::Gt, 1),
            },
            '\'' => {
                let start_col = col;
                let mut j = i + 1;
                let mut s = String::new();
                loop {
                    match chars.get(j) {
                        None => {
                            return Err(EsqlError::Syntax {
                                line,
                                column: start_col,
                                message: "unterminated string literal".into(),
                            })
                        }
                        Some('\'') if chars.get(j + 1) == Some(&'\'') => {
                            s.push('\'');
                            j += 2;
                        }
                        Some('\'') => {
                            j += 1;
                            break;
                        }
                        Some(ch) => {
                            s.push(*ch);
                            j += 1;
                        }
                    }
                }
                let len = j - i;
                push!(Tok::Str(s), len);
            }
            d if d.is_ascii_digit() => {
                let mut j = i;
                while j < chars.len() && (chars[j].is_ascii_digit() || chars[j] == '_') {
                    j += 1;
                }
                let is_real = chars.get(j) == Some(&'.')
                    && chars.get(j + 1).is_some_and(char::is_ascii_digit);
                if is_real {
                    let mut k = j + 1;
                    while k < chars.len() && chars[k].is_ascii_digit() {
                        k += 1;
                    }
                    let text: String = chars[i..k].iter().filter(|c| **c != '_').collect();
                    let value: f64 = text.parse().map_err(|_| EsqlError::Syntax {
                        line,
                        column: col,
                        message: format!("invalid real literal '{text}'"),
                    })?;
                    let len = k - i;
                    push!(Tok::Real(value), len);
                } else {
                    let text: String = chars[i..j].iter().filter(|c| **c != '_').collect();
                    let value: i64 = text.parse().map_err(|_| EsqlError::Syntax {
                        line,
                        column: col,
                        message: format!("integer literal out of range '{text}'"),
                    })?;
                    let len = j - i;
                    push!(Tok::Int(value), len);
                }
            }
            a if a.is_ascii_alphabetic() || a == '_' => {
                let mut j = i;
                while j < chars.len() && (chars[j].is_ascii_alphanumeric() || chars[j] == '_') {
                    j += 1;
                }
                let name: String = chars[i..j].iter().collect();
                let len = j - i;
                push!(Tok::Ident(name), len);
            }
            other => {
                return Err(EsqlError::Syntax {
                    line,
                    column: col,
                    message: format!("unexpected character '{other}'"),
                })
            }
        }
    }
    out.push(Spanned {
        tok: Tok::Eof,
        line,
        column: col,
    });
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lexes_query_shapes() {
        let toks = lex("SELECT Title FROM FILM WHERE FILM.Numf = 10_000 ;").unwrap();
        let kinds: Vec<&Tok> = toks.iter().map(|s| &s.tok).collect();
        assert!(kinds.contains(&&Tok::Int(10_000)));
        assert!(kinds.iter().any(|t| t.is_kw("select")));
        assert!(kinds.contains(&&Tok::Dot));
    }

    #[test]
    fn string_with_escape() {
        let toks = lex("'it''s'").unwrap();
        assert_eq!(toks[0].tok, Tok::Str("it's".into()));
    }

    #[test]
    fn comments_skipped() {
        let toks = lex("SELECT -- comment\n1").unwrap();
        assert_eq!(toks.len(), 3); // SELECT, 1, EOF
    }

    #[test]
    fn real_vs_qualified_name() {
        let toks = lex("1.5 A.b").unwrap();
        assert_eq!(toks[0].tok, Tok::Real(1.5));
        assert_eq!(toks[1].tok, Tok::Ident("A".into()));
        assert_eq!(toks[2].tok, Tok::Dot);
    }

    #[test]
    fn operators() {
        let toks = lex("<= >= <> != < > =").unwrap();
        let kinds: Vec<&Tok> = toks.iter().map(|s| &s.tok).collect();
        assert_eq!(
            kinds[..7],
            [
                &Tok::Le,
                &Tok::Ge,
                &Tok::Ne,
                &Tok::Ne,
                &Tok::Lt,
                &Tok::Gt,
                &Tok::Eq
            ]
        );
    }

    #[test]
    fn position_tracking() {
        let toks = lex("a\n  b").unwrap();
        assert_eq!((toks[1].line, toks[1].column), (2, 3));
    }

    #[test]
    fn error_on_bad_char() {
        assert!(matches!(lex("@"), Err(EsqlError::Syntax { .. })));
    }

    #[test]
    fn question_mark_is_a_parameter_token() {
        let toks = lex("WHERE K = ?").unwrap();
        assert_eq!(toks[3].tok, Tok::Question);
    }
}
