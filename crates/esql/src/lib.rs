//! # eds-esql — the ESQL front-end
//!
//! Reproduces Section 2 of Finance & Gardarin, *"A Rule-Based Query
//! Rewriter in an Extensible DBMS"* (ICDE 1991): the Extended SQL of the
//! EDS database server, with strong ADT support, complex objects with
//! sharing, and deductive (recursive-view) capability.
//!
//! * [`token`] / [`parser`] — lexer and recursive-descent parser for
//!   `TYPE`, `TABLE`, `CREATE VIEW` (incl. recursive unions) and `SELECT`;
//! * [`ast`] — statement and expression trees;
//! * [`catalog::Catalog`] — installed schema: types, tables, views, and
//!   the attribute-as-function resolution used by the LERA translator.

#![warn(missing_docs)]

pub mod ast;
pub mod catalog;
pub mod error;
pub mod parser;
pub mod token;

pub use ast::{
    BinOp, Expr, FunctionDecl, InsertStmt, Query, SelectCore, SelectItem, Stmt, TableDecl,
    TableRef, TypeDecl, TypeDeclBody, TypeRef, ViewDecl,
};
pub use catalog::{install_source, Catalog, TableSchema};
pub use error::{EsqlError, EsqlResult};
pub use parser::{parse_query, parse_statement, parse_statements};
