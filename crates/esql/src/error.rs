//! ESQL front-end errors.

use std::fmt;

use eds_adt::AdtError;

/// Errors raised while lexing, parsing, or resolving ESQL.
#[derive(Debug, Clone, PartialEq)]
pub enum EsqlError {
    /// Lexical or syntactic error with source position.
    Syntax {
        /// 1-based line.
        line: usize,
        /// 1-based column.
        column: usize,
        /// Description.
        message: String,
    },
    /// A table or view name could not be resolved.
    UnknownRelation(String),
    /// A column name could not be resolved in the current scope.
    UnknownColumn {
        /// Optional qualifier as written.
        qualifier: Option<String>,
        /// Column name.
        name: String,
    },
    /// An ambiguous unqualified column.
    AmbiguousColumn(String),
    /// Redefinition of a relation.
    DuplicateRelation(String),
    /// Type-level failure from the ADT layer.
    Adt(AdtError),
    /// Ill-typed expression.
    TypeError(String),
}

impl fmt::Display for EsqlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EsqlError::Syntax {
                line,
                column,
                message,
            } => write!(f, "syntax error at {line}:{column}: {message}"),
            EsqlError::UnknownRelation(name) => write!(f, "unknown table or view '{name}'"),
            EsqlError::UnknownColumn { qualifier, name } => match qualifier {
                Some(q) => write!(f, "unknown column '{q}.{name}'"),
                None => write!(f, "unknown column '{name}'"),
            },
            EsqlError::AmbiguousColumn(name) => write!(f, "ambiguous column '{name}'"),
            EsqlError::DuplicateRelation(name) => {
                write!(f, "table or view '{name}' already exists")
            }
            EsqlError::Adt(e) => write!(f, "{e}"),
            EsqlError::TypeError(msg) => write!(f, "type error: {msg}"),
        }
    }
}

impl std::error::Error for EsqlError {}

impl From<AdtError> for EsqlError {
    fn from(e: AdtError) -> Self {
        EsqlError::Adt(e)
    }
}

/// Result alias for the ESQL layer.
pub type EsqlResult<T> = Result<T, EsqlError>;
