//! Abstract syntax of ESQL statements.

use eds_adt::CollKind;

/// A parsed statement.
#[derive(Debug, Clone, PartialEq)]
pub enum Stmt {
    /// A `TYPE` declaration.
    TypeDecl(TypeDecl),
    /// A `TABLE` declaration.
    TableDecl(TableDecl),
    /// A `CREATE VIEW` (possibly recursive — the ESQL deductive
    /// capability).
    ViewDecl(ViewDecl),
    /// An `INSERT INTO ... VALUES ...` statement.
    Insert(InsertStmt),
    /// A query.
    Query(Query),
}

/// `INSERT INTO table VALUES (e, ...), (e, ...)`. Value expressions must
/// be constant (literals and constant constructor calls like
/// `MakeSet('a', 'b')`).
#[derive(Debug, Clone, PartialEq)]
pub struct InsertStmt {
    /// Target table.
    pub table: String,
    /// Rows of value expressions.
    pub rows: Vec<Vec<Expr>>,
}

/// Reference to a type in declarations.
#[derive(Debug, Clone, PartialEq)]
pub enum TypeRef {
    /// `BOOL`
    Bool,
    /// `INT`
    Int,
    /// `REAL`
    Real,
    /// `NUMERIC`
    Numeric,
    /// `CHAR`
    Char,
    /// A user-declared named type.
    Named(String),
    /// `TUPLE (a : T, ...)`
    Tuple(Vec<(String, TypeRef)>),
    /// `SET OF T`, `LIST OF T`, ...
    Coll(CollKind, Box<TypeRef>),
}

/// Body of a `TYPE` declaration.
#[derive(Debug, Clone, PartialEq)]
pub enum TypeDeclBody {
    /// `ENUMERATION OF ('a', 'b')`
    Enumeration(Vec<String>),
    /// Any structural body (`TUPLE(...)`, `LIST OF CHAR`, alias).
    Structure(TypeRef),
}

/// A `FUNCTION` clause on a type declaration.
#[derive(Debug, Clone, PartialEq)]
pub struct FunctionDecl {
    /// Method name.
    pub name: String,
    /// `(param Type, ...)`.
    pub params: Vec<(String, TypeRef)>,
    /// Optional result type.
    pub result: Option<TypeRef>,
}

/// `TYPE name [SUBTYPE OF s] [OBJECT] body [FUNCTION ...]*`.
#[derive(Debug, Clone, PartialEq)]
pub struct TypeDecl {
    /// Type name.
    pub name: String,
    /// Declared supertype.
    pub supertype: Option<String>,
    /// Object identity flag.
    pub is_object: bool,
    /// Body.
    pub body: TypeDeclBody,
    /// Declared methods.
    pub functions: Vec<FunctionDecl>,
}

/// `TABLE name (col : Type, ...)`.
#[derive(Debug, Clone, PartialEq)]
pub struct TableDecl {
    /// Table name.
    pub name: String,
    /// Column declarations.
    pub columns: Vec<(String, TypeRef)>,
}

/// `CREATE VIEW name (cols) AS query`.
#[derive(Debug, Clone, PartialEq)]
pub struct ViewDecl {
    /// View name.
    pub name: String,
    /// Result column names.
    pub columns: Vec<String>,
    /// Defining query (a `UNION` of blocks for recursive views).
    pub query: Query,
}

impl ViewDecl {
    /// True when the defining query references the view itself — the
    /// ESQL encoding of DATALOG recursion (Figure 5).
    pub fn is_recursive(&self) -> bool {
        fn query_refs(q: &Query, name: &str) -> bool {
            match q {
                Query::Select(core) => core.from.iter().any(|t| t.name.eq_ignore_ascii_case(name)),
                Query::Union(a, b) => query_refs(a, name) || query_refs(b, name),
            }
        }
        query_refs(&self.query, &self.name)
    }
}

/// A query: a select block or a union of queries.
#[derive(Debug, Clone, PartialEq)]
pub enum Query {
    /// `SELECT ...`
    Select(SelectCore),
    /// `q1 UNION q2`
    Union(Box<Query>, Box<Query>),
}

/// One `SELECT` block.
#[derive(Debug, Clone, PartialEq)]
pub struct SelectCore {
    /// `SELECT DISTINCT`?
    pub distinct: bool,
    /// Projected expressions with optional aliases; `None` items denote
    /// `SELECT *`.
    pub projections: Vec<SelectItem>,
    /// `FROM` relations.
    pub from: Vec<TableRef>,
    /// `WHERE` qualification.
    pub where_clause: Option<Expr>,
    /// `GROUP BY` expressions.
    pub group_by: Vec<Expr>,
    /// `HAVING` qualification.
    pub having: Option<Expr>,
}

/// One projection item.
#[derive(Debug, Clone, PartialEq)]
pub enum SelectItem {
    /// `SELECT *`.
    Wildcard,
    /// An expression with an optional alias.
    Expr {
        /// The projected expression.
        expr: Expr,
        /// `AS alias`.
        alias: Option<String>,
    },
}

/// A `FROM` item: relation name with optional alias (`BETTER_THAN B1`).
#[derive(Debug, Clone, PartialEq)]
pub struct TableRef {
    /// Table or view name.
    pub name: String,
    /// Optional correlation name.
    pub alias: Option<String>,
}

impl TableRef {
    /// The name this relation is referenced by in the query scope.
    pub fn binding_name(&self) -> &str {
        self.alias.as_deref().unwrap_or(&self.name)
    }
}

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    /// `=`
    Eq,
    /// `<>`
    Ne,
    /// `<`
    Lt,
    /// `>`
    Gt,
    /// `<=`
    Le,
    /// `>=`
    Ge,
    /// `AND`
    And,
    /// `OR`
    Or,
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
}

impl BinOp {
    /// The functor name used in LERA terms.
    pub fn functor(self) -> &'static str {
        match self {
            BinOp::Eq => "=",
            BinOp::Ne => "<>",
            BinOp::Lt => "<",
            BinOp::Gt => ">",
            BinOp::Le => "<=",
            BinOp::Ge => ">=",
            BinOp::And => "AND",
            BinOp::Or => "OR",
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Div => "/",
        }
    }
}

/// An ESQL scalar expression.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Column reference `[qualifier.]name`.
    Column {
        /// Optional table/alias qualifier.
        qualifier: Option<String>,
        /// Column name.
        name: String,
    },
    /// Integer literal.
    Int(i64),
    /// Real literal.
    Real(f64),
    /// String literal.
    Str(String),
    /// `TRUE`/`FALSE`.
    Bool(bool),
    /// `NULL`.
    Null,
    /// `?` — a positional statement parameter, numbered left to right
    /// from 0 in source order, bound to a value at execute time.
    Param(u16),
    /// Function or attribute application `Name(args)` — attributes applied
    /// as functions perform projection (Section 2.1).
    Call {
        /// Function/attribute name.
        name: String,
        /// Arguments.
        args: Vec<Expr>,
    },
    /// Binary operation.
    Binary {
        /// Operator.
        op: BinOp,
        /// Left operand.
        left: Box<Expr>,
        /// Right operand.
        right: Box<Expr>,
    },
    /// `NOT e`.
    Not(Box<Expr>),
    /// `ALL (e)` set quantifier.
    All(Box<Expr>),
    /// `EXIST (e)` set quantifier.
    Exist(Box<Expr>),
    /// `e IN (a, b, c)`.
    InList {
        /// Tested expression.
        expr: Box<Expr>,
        /// Candidate list.
        list: Vec<Expr>,
    },
    /// `e IN (SELECT ...)` — an (uncorrelated) subquery membership test.
    InQuery {
        /// Tested expression.
        expr: Box<Expr>,
        /// The subquery (must produce a single column).
        query: Box<Query>,
    },
}

impl Expr {
    /// Convenience: conjunction of two optional qualifications.
    pub fn and_opt(a: Option<Expr>, b: Option<Expr>) -> Option<Expr> {
        match (a, b) {
            (Some(a), Some(b)) => Some(Expr::Binary {
                op: BinOp::And,
                left: Box::new(a),
                right: Box::new(b),
            }),
            (Some(a), None) => Some(a),
            (None, b) => b,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn select_from(names: &[&str]) -> Query {
        Query::Select(SelectCore {
            distinct: false,
            projections: vec![SelectItem::Wildcard],
            from: names
                .iter()
                .map(|n| TableRef {
                    name: (*n).to_owned(),
                    alias: None,
                })
                .collect(),
            where_clause: None,
            group_by: vec![],
            having: None,
        })
    }

    #[test]
    fn recursion_detected_through_union() {
        let view = ViewDecl {
            name: "BETTER_THAN".into(),
            columns: vec!["a".into(), "b".into()],
            query: Query::Union(
                Box::new(select_from(&["DOMINATE"])),
                Box::new(select_from(&["BETTER_THAN", "BETTER_THAN"])),
            ),
        };
        assert!(view.is_recursive());
        let plain = ViewDecl {
            name: "V".into(),
            columns: vec![],
            query: select_from(&["FILM"]),
        };
        assert!(!plain.is_recursive());
    }

    #[test]
    fn table_ref_binding_name() {
        let t = TableRef {
            name: "BETTER_THAN".into(),
            alias: Some("B1".into()),
        };
        assert_eq!(t.binding_name(), "B1");
    }
}
