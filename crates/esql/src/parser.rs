//! Recursive-descent parser for ESQL.
//!
//! Covers the language of Section 2 of the paper: `TYPE` declarations
//! (enumerations, tuples, generic collections, object types, subtypes,
//! method signatures), `TABLE` declarations, `CREATE VIEW` (including
//! recursive views via `UNION`), and `SELECT` queries with ADT function
//! calls, `MEMBER`, and the `ALL`/`EXIST` set quantifiers.

use eds_adt::CollKind;

use crate::ast::*;
use crate::error::{EsqlError, EsqlResult};
use crate::token::{lex, Spanned, Tok};

/// Parse a sequence of `;`-separated statements.
pub fn parse_statements(src: &str) -> EsqlResult<Vec<Stmt>> {
    let tokens = lex(src)?;
    let mut p = Parser {
        tokens,
        pos: 0,
        params: 0,
    };
    let mut stmts = Vec::new();
    while !matches!(p.peek(), Tok::Eof) {
        stmts.push(p.parse_stmt()?);
        while matches!(p.peek(), Tok::Semi) {
            p.bump();
        }
    }
    Ok(stmts)
}

/// Parse a single statement.
pub fn parse_statement(src: &str) -> EsqlResult<Stmt> {
    let mut stmts = parse_statements(src)?;
    match stmts.len() {
        1 => Ok(stmts.remove(0)),
        n => Err(EsqlError::Syntax {
            line: 1,
            column: 1,
            message: format!("expected exactly one statement, found {n}"),
        }),
    }
}

/// Parse a query (SELECT or UNION of SELECTs).
pub fn parse_query(src: &str) -> EsqlResult<Query> {
    match parse_statement(src)? {
        Stmt::Query(q) => Ok(q),
        other => Err(EsqlError::Syntax {
            line: 1,
            column: 1,
            message: format!("expected a query, found {other:?}"),
        }),
    }
}

struct Parser {
    tokens: Vec<Spanned>,
    pos: usize,
    /// Number of `?` placeholders seen so far; assigns each its 0-based
    /// positional index in source order.
    params: u16,
}

impl Parser {
    fn peek(&self) -> &Tok {
        &self.tokens[self.pos].tok
    }

    fn peek2(&self) -> &Tok {
        &self.tokens[(self.pos + 1).min(self.tokens.len() - 1)].tok
    }

    fn bump(&mut self) -> Tok {
        let t = self.tokens[self.pos].tok.clone();
        if self.pos + 1 < self.tokens.len() {
            self.pos += 1;
        }
        t
    }

    fn err<T>(&self, message: impl Into<String>) -> EsqlResult<T> {
        let s = &self.tokens[self.pos];
        Err(EsqlError::Syntax {
            line: s.line,
            column: s.column,
            message: message.into(),
        })
    }

    fn expect(&mut self, tok: Tok, what: &str) -> EsqlResult<()> {
        if self.peek() == &tok {
            self.bump();
            Ok(())
        } else {
            self.err(format!("expected {what}, found {:?}", self.peek()))
        }
    }

    fn expect_kw(&mut self, kw: &str) -> EsqlResult<()> {
        if self.peek().is_kw(kw) {
            self.bump();
            Ok(())
        } else {
            self.err(format!("expected keyword {kw}, found {:?}", self.peek()))
        }
    }

    fn eat_kw(&mut self, kw: &str) -> bool {
        if self.peek().is_kw(kw) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn ident(&mut self, what: &str) -> EsqlResult<String> {
        match self.peek().clone() {
            Tok::Ident(name) => {
                self.bump();
                Ok(name)
            }
            other => self.err(format!("expected {what}, found {other:?}")),
        }
    }

    fn parse_stmt(&mut self) -> EsqlResult<Stmt> {
        if self.peek().is_kw("TYPE") {
            self.bump();
            Ok(Stmt::TypeDecl(self.parse_type_decl()?))
        } else if self.peek().is_kw("TABLE") {
            self.bump();
            Ok(Stmt::TableDecl(self.parse_table_decl()?))
        } else if self.peek().is_kw("CREATE") {
            self.bump();
            if self.eat_kw("TABLE") {
                Ok(Stmt::TableDecl(self.parse_table_decl()?))
            } else {
                self.expect_kw("VIEW")?;
                Ok(Stmt::ViewDecl(self.parse_view_decl()?))
            }
        } else if self.peek().is_kw("INSERT") {
            self.bump();
            self.expect_kw("INTO")?;
            let table = self.ident("table name")?;
            self.expect_kw("VALUES")?;
            let mut rows = Vec::new();
            loop {
                self.expect(Tok::LParen, "'(' starting a VALUES row")?;
                let mut row = Vec::new();
                if !matches!(self.peek(), Tok::RParen) {
                    loop {
                        row.push(self.parse_expr()?);
                        if matches!(self.peek(), Tok::Comma) {
                            self.bump();
                        } else {
                            break;
                        }
                    }
                }
                self.expect(Tok::RParen, "')' ending a VALUES row")?;
                rows.push(row);
                if matches!(self.peek(), Tok::Comma) {
                    self.bump();
                } else {
                    break;
                }
            }
            Ok(Stmt::Insert(InsertStmt { table, rows }))
        } else if self.peek().is_kw("SELECT") || matches!(self.peek(), Tok::LParen) {
            Ok(Stmt::Query(self.parse_query_expr()?))
        } else {
            self.err("expected TYPE, TABLE, CREATE VIEW, INSERT or SELECT")
        }
    }

    // ------------------------------------------------------------- DDL

    fn parse_type_decl(&mut self) -> EsqlResult<TypeDecl> {
        let name = self.ident("type name")?;
        let mut supertype = None;
        if self.eat_kw("SUBTYPE") {
            self.expect_kw("OF")?;
            supertype = Some(self.ident("supertype name")?);
        }
        let is_object = self.eat_kw("OBJECT");
        let body = if self.eat_kw("ENUMERATION") {
            self.expect_kw("OF")?;
            self.expect(Tok::LParen, "'('")?;
            let mut values = Vec::new();
            loop {
                match self.bump() {
                    Tok::Str(s) => values.push(s),
                    other => return self.err(format!("expected string literal, found {other:?}")),
                }
                if matches!(self.peek(), Tok::Comma) {
                    self.bump();
                } else {
                    break;
                }
            }
            self.expect(Tok::RParen, "')'")?;
            TypeDeclBody::Enumeration(values)
        } else {
            TypeDeclBody::Structure(self.parse_typeref()?)
        };
        let mut functions = Vec::new();
        while self.eat_kw("FUNCTION") {
            functions.push(self.parse_function_decl()?);
        }
        Ok(TypeDecl {
            name,
            supertype,
            is_object,
            body,
            functions,
        })
    }

    fn parse_function_decl(&mut self) -> EsqlResult<FunctionDecl> {
        let name = self.ident("function name")?;
        self.expect(Tok::LParen, "'('")?;
        let mut params = Vec::new();
        if !matches!(self.peek(), Tok::RParen) {
            loop {
                let pname = self.ident("parameter name")?;
                // optional ':' between name and type
                if matches!(self.peek(), Tok::Colon) {
                    self.bump();
                }
                let ty = self.parse_typeref()?;
                params.push((pname, ty));
                if matches!(self.peek(), Tok::Comma) {
                    self.bump();
                } else {
                    break;
                }
            }
        }
        self.expect(Tok::RParen, "')'")?;
        let result = if self.eat_kw("RETURNS") {
            Some(self.parse_typeref()?)
        } else {
            None
        };
        Ok(FunctionDecl {
            name,
            params,
            result,
        })
    }

    fn parse_typeref(&mut self) -> EsqlResult<TypeRef> {
        let name = self.ident("type")?;
        let upper = name.to_ascii_uppercase();
        match upper.as_str() {
            "BOOL" | "BOOLEAN" => Ok(TypeRef::Bool),
            "INT" | "INTEGER" => Ok(TypeRef::Int),
            "REAL" | "FLOAT" => Ok(TypeRef::Real),
            "NUMERIC" => Ok(TypeRef::Numeric),
            "CHAR" | "TEXT" if upper == "CHAR" => Ok(TypeRef::Char),
            "TUPLE" => {
                self.expect(Tok::LParen, "'(' after TUPLE")?;
                let mut fields = Vec::new();
                loop {
                    let fname = self.ident("attribute name")?;
                    if matches!(self.peek(), Tok::Colon) {
                        self.bump();
                    }
                    let ty = self.parse_typeref()?;
                    fields.push((fname, ty));
                    if matches!(self.peek(), Tok::Comma) {
                        self.bump();
                    } else {
                        break;
                    }
                }
                self.expect(Tok::RParen, "')' after tuple fields")?;
                Ok(TypeRef::Tuple(fields))
            }
            "SET" | "BAG" | "LIST" | "ARRAY" => {
                let kind = match upper.as_str() {
                    "SET" => CollKind::Set,
                    "BAG" => CollKind::Bag,
                    "LIST" => CollKind::List,
                    _ => CollKind::Array,
                };
                self.expect_kw("OF")?;
                let elem = self.parse_typeref()?;
                Ok(TypeRef::Coll(kind, Box::new(elem)))
            }
            _ => Ok(TypeRef::Named(name)),
        }
    }

    fn parse_table_decl(&mut self) -> EsqlResult<TableDecl> {
        let name = self.ident("table name")?;
        self.expect(Tok::LParen, "'(' after table name")?;
        let mut columns = Vec::new();
        loop {
            let cname = self.ident("column name")?;
            if matches!(self.peek(), Tok::Colon) {
                self.bump();
            }
            let ty = self.parse_typeref()?;
            columns.push((cname, ty));
            if matches!(self.peek(), Tok::Comma) {
                self.bump();
            } else {
                break;
            }
        }
        self.expect(Tok::RParen, "')' after columns")?;
        Ok(TableDecl { name, columns })
    }

    fn parse_view_decl(&mut self) -> EsqlResult<ViewDecl> {
        let name = self.ident("view name")?;
        let mut columns = Vec::new();
        if matches!(self.peek(), Tok::LParen) {
            self.bump();
            loop {
                columns.push(self.ident("column name")?);
                if matches!(self.peek(), Tok::Comma) {
                    self.bump();
                } else {
                    break;
                }
            }
            self.expect(Tok::RParen, "')' after view columns")?;
        }
        self.expect_kw("AS")?;
        let query = self.parse_query_expr()?;
        Ok(ViewDecl {
            name,
            columns,
            query,
        })
    }

    // ---------------------------------------------------------- queries

    fn parse_query_expr(&mut self) -> EsqlResult<Query> {
        let mut q = self.parse_query_term()?;
        while self.peek().is_kw("UNION") {
            self.bump();
            let rhs = self.parse_query_term()?;
            q = Query::Union(Box::new(q), Box::new(rhs));
        }
        Ok(q)
    }

    fn parse_query_term(&mut self) -> EsqlResult<Query> {
        if matches!(self.peek(), Tok::LParen) {
            self.bump();
            let q = self.parse_query_expr()?;
            self.expect(Tok::RParen, "')' closing query")?;
            Ok(q)
        } else {
            Ok(Query::Select(self.parse_select()?))
        }
    }

    fn parse_select(&mut self) -> EsqlResult<SelectCore> {
        self.expect_kw("SELECT")?;
        let distinct = self.eat_kw("DISTINCT");
        let mut projections = Vec::new();
        loop {
            if matches!(self.peek(), Tok::Star) {
                self.bump();
                projections.push(SelectItem::Wildcard);
            } else {
                let expr = self.parse_expr()?;
                let alias = if self.eat_kw("AS") {
                    Some(self.ident("alias")?)
                } else {
                    None
                };
                projections.push(SelectItem::Expr { expr, alias });
            }
            if matches!(self.peek(), Tok::Comma) {
                self.bump();
            } else {
                break;
            }
        }
        self.expect_kw("FROM")?;
        let mut from = Vec::new();
        loop {
            let name = self.ident("relation name")?;
            // Optional correlation name: an identifier that is not a
            // clause keyword.
            let alias = match self.peek() {
                Tok::Ident(a) if !is_clause_keyword(a) => {
                    let a = a.clone();
                    self.bump();
                    Some(a)
                }
                _ => None,
            };
            from.push(TableRef { name, alias });
            if matches!(self.peek(), Tok::Comma) {
                self.bump();
            } else {
                break;
            }
        }
        let where_clause = if self.eat_kw("WHERE") {
            Some(self.parse_expr()?)
        } else {
            None
        };
        let mut group_by = Vec::new();
        if self.peek().is_kw("GROUP") {
            self.bump();
            self.expect_kw("BY")?;
            loop {
                group_by.push(self.parse_expr()?);
                if matches!(self.peek(), Tok::Comma) {
                    self.bump();
                } else {
                    break;
                }
            }
        }
        let having = if self.eat_kw("HAVING") {
            Some(self.parse_expr()?)
        } else {
            None
        };
        Ok(SelectCore {
            distinct,
            projections,
            from,
            where_clause,
            group_by,
            having,
        })
    }

    // ------------------------------------------------------ expressions

    fn parse_expr(&mut self) -> EsqlResult<Expr> {
        self.parse_or()
    }

    fn parse_or(&mut self) -> EsqlResult<Expr> {
        let mut lhs = self.parse_and()?;
        while self.peek().is_kw("OR") {
            self.bump();
            let rhs = self.parse_and()?;
            lhs = Expr::Binary {
                op: BinOp::Or,
                left: Box::new(lhs),
                right: Box::new(rhs),
            };
        }
        Ok(lhs)
    }

    fn parse_and(&mut self) -> EsqlResult<Expr> {
        let mut lhs = self.parse_not()?;
        while self.peek().is_kw("AND") {
            self.bump();
            let rhs = self.parse_not()?;
            lhs = Expr::Binary {
                op: BinOp::And,
                left: Box::new(lhs),
                right: Box::new(rhs),
            };
        }
        Ok(lhs)
    }

    fn parse_not(&mut self) -> EsqlResult<Expr> {
        if self.peek().is_kw("NOT") {
            self.bump();
            let inner = self.parse_not()?;
            Ok(Expr::Not(Box::new(inner)))
        } else {
            self.parse_cmp()
        }
    }

    fn parse_cmp(&mut self) -> EsqlResult<Expr> {
        let lhs = self.parse_additive()?;
        let op = match self.peek() {
            Tok::Eq => Some(BinOp::Eq),
            Tok::Ne => Some(BinOp::Ne),
            Tok::Lt => Some(BinOp::Lt),
            Tok::Gt => Some(BinOp::Gt),
            Tok::Le => Some(BinOp::Le),
            Tok::Ge => Some(BinOp::Ge),
            _ => None,
        };
        if let Some(op) = op {
            self.bump();
            let rhs = self.parse_additive()?;
            return Ok(Expr::Binary {
                op,
                left: Box::new(lhs),
                right: Box::new(rhs),
            });
        }
        if self.peek().is_kw("IN") {
            self.bump();
            self.expect(Tok::LParen, "'(' after IN")?;
            if self.peek().is_kw("SELECT") || matches!(self.peek(), Tok::LParen) {
                let query = self.parse_query_expr()?;
                self.expect(Tok::RParen, "')' closing IN subquery")?;
                return Ok(Expr::InQuery {
                    expr: Box::new(lhs),
                    query: Box::new(query),
                });
            }
            let mut list = Vec::new();
            loop {
                list.push(self.parse_expr()?);
                if matches!(self.peek(), Tok::Comma) {
                    self.bump();
                } else {
                    break;
                }
            }
            self.expect(Tok::RParen, "')' closing IN list")?;
            return Ok(Expr::InList {
                expr: Box::new(lhs),
                list,
            });
        }
        Ok(lhs)
    }

    fn parse_additive(&mut self) -> EsqlResult<Expr> {
        let mut lhs = self.parse_multiplicative()?;
        loop {
            let op = match self.peek() {
                Tok::Plus => BinOp::Add,
                Tok::Minus => BinOp::Sub,
                _ => break,
            };
            self.bump();
            let rhs = self.parse_multiplicative()?;
            lhs = Expr::Binary {
                op,
                left: Box::new(lhs),
                right: Box::new(rhs),
            };
        }
        Ok(lhs)
    }

    fn parse_multiplicative(&mut self) -> EsqlResult<Expr> {
        let mut lhs = self.parse_unary()?;
        loop {
            let op = match self.peek() {
                Tok::Star => BinOp::Mul,
                Tok::Slash => BinOp::Div,
                _ => break,
            };
            self.bump();
            let rhs = self.parse_unary()?;
            lhs = Expr::Binary {
                op,
                left: Box::new(lhs),
                right: Box::new(rhs),
            };
        }
        Ok(lhs)
    }

    fn parse_unary(&mut self) -> EsqlResult<Expr> {
        if matches!(self.peek(), Tok::Minus) {
            self.bump();
            let inner = self.parse_unary()?;
            return Ok(match inner {
                Expr::Int(i) => Expr::Int(-i),
                Expr::Real(r) => Expr::Real(-r),
                other => Expr::Binary {
                    op: BinOp::Sub,
                    left: Box::new(Expr::Int(0)),
                    right: Box::new(other),
                },
            });
        }
        self.parse_primary()
    }

    fn parse_primary(&mut self) -> EsqlResult<Expr> {
        match self.peek().clone() {
            Tok::Int(i) => {
                self.bump();
                Ok(Expr::Int(i))
            }
            Tok::Real(r) => {
                self.bump();
                Ok(Expr::Real(r))
            }
            Tok::Str(s) => {
                self.bump();
                Ok(Expr::Str(s))
            }
            Tok::Question => {
                if self.params == u16::MAX {
                    return self.err("too many '?' parameters");
                }
                self.bump();
                let idx = self.params;
                self.params += 1;
                Ok(Expr::Param(idx))
            }
            Tok::LParen => {
                self.bump();
                let e = self.parse_expr()?;
                self.expect(Tok::RParen, "')'")?;
                Ok(e)
            }
            Tok::Ident(name) => {
                if name.eq_ignore_ascii_case("TRUE") {
                    self.bump();
                    return Ok(Expr::Bool(true));
                }
                if name.eq_ignore_ascii_case("FALSE") {
                    self.bump();
                    return Ok(Expr::Bool(false));
                }
                if name.eq_ignore_ascii_case("NULL") {
                    self.bump();
                    return Ok(Expr::Null);
                }
                if name.eq_ignore_ascii_case("ALL") && matches!(self.peek2(), Tok::LParen) {
                    self.bump();
                    self.bump();
                    let inner = self.parse_expr()?;
                    self.expect(Tok::RParen, "')' closing ALL")?;
                    return Ok(Expr::All(Box::new(inner)));
                }
                if name.eq_ignore_ascii_case("EXIST") && matches!(self.peek2(), Tok::LParen) {
                    self.bump();
                    self.bump();
                    let inner = self.parse_expr()?;
                    self.expect(Tok::RParen, "')' closing EXIST")?;
                    return Ok(Expr::Exist(Box::new(inner)));
                }
                self.bump();
                match self.peek() {
                    Tok::LParen => {
                        self.bump();
                        let mut args = Vec::new();
                        if !matches!(self.peek(), Tok::RParen) {
                            loop {
                                args.push(self.parse_expr()?);
                                if matches!(self.peek(), Tok::Comma) {
                                    self.bump();
                                } else {
                                    break;
                                }
                            }
                        }
                        self.expect(Tok::RParen, "')' closing call")?;
                        Ok(Expr::Call { name, args })
                    }
                    Tok::Dot => {
                        self.bump();
                        let attr = self.ident("attribute name")?;
                        Ok(Expr::Column {
                            qualifier: Some(name),
                            name: attr,
                        })
                    }
                    _ => Ok(Expr::Column {
                        qualifier: None,
                        name,
                    }),
                }
            }
            other => self.err(format!("expected an expression, found {other:?}")),
        }
    }
}

fn is_clause_keyword(word: &str) -> bool {
    const KEYWORDS: [&str; 10] = [
        "WHERE", "GROUP", "HAVING", "UNION", "ORDER", "SELECT", "FROM", "ON", "AS", "BY",
    ];
    KEYWORDS.iter().any(|k| word.eq_ignore_ascii_case(k))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_paper_fig2_schema() {
        let stmts = parse_statements(
            "TYPE Category ENUMERATION OF ('Comedy', 'Adventure', 'Science Fiction', 'Western') ;\n\
             TYPE Point TUPLE (ABS : REAL, ORD : REAL) ;\n\
             TYPE Person OBJECT TUPLE ( Name : CHAR, Firstname : SET OF CHAR, Caricature : LIST OF Point) ;\n\
             TYPE Actor SUBTYPE OF Person OBJECT TUPLE (Salary : NUMERIC) \
               FUNCTION IncreaseSalary(This Actor, Val NUMERIC) ;\n\
             TYPE Text LIST OF CHAR ;\n\
             TYPE SetCategory SET OF Category ;\n\
             TYPE Pairs LIST OF TUPLE (Pros : INT, Cons : INT) ;\n\
             TABLE FILM ( Numf : NUMERIC, Title : Text, Categories : SetCategory) ;\n\
             TABLE APPEARS_IN ( Numf : NUMERIC, Refactor : Actor) ;\n\
             TABLE DOMINATE ( Numf : NUMERIC, Refactor1 : Actor, Refactor2 : Actor, Score : Pairs) ;",
        )
        .unwrap();
        assert_eq!(stmts.len(), 10);
        match &stmts[3] {
            Stmt::TypeDecl(t) => {
                assert_eq!(t.name, "Actor");
                assert_eq!(t.supertype.as_deref(), Some("Person"));
                assert!(t.is_object);
                assert_eq!(t.functions.len(), 1);
                assert_eq!(t.functions[0].name, "IncreaseSalary");
                assert_eq!(t.functions[0].params.len(), 2);
            }
            other => panic!("expected Actor type, got {other:?}"),
        }
        match &stmts[7] {
            Stmt::TableDecl(t) => {
                assert_eq!(t.name, "FILM");
                assert_eq!(t.columns.len(), 3);
                assert_eq!(
                    t.columns[1],
                    ("Title".into(), TypeRef::Named("Text".into()))
                );
            }
            other => panic!("expected FILM table, got {other:?}"),
        }
    }

    #[test]
    fn parses_paper_fig3_query() {
        let q = parse_query(
            "SELECT Title, Categories, Salary(Refactor) \
             FROM FILM, APPEARS_IN \
             WHERE FILM.Numf = APPEARS_IN.Numf \
             AND NAME(Refactor) = 'Quinn' \
             AND MEMBER ('Adventure', Categories) ;",
        )
        .unwrap();
        let Query::Select(core) = q else {
            panic!("expected select")
        };
        assert_eq!(core.projections.len(), 3);
        assert_eq!(core.from.len(), 2);
        let w = core.where_clause.unwrap();
        // top-level AND chain with MEMBER call at the right
        let Expr::Binary {
            op: BinOp::And,
            right,
            ..
        } = w
        else {
            panic!("expected AND")
        };
        assert!(matches!(*right, Expr::Call { ref name, .. } if name == "MEMBER"));
    }

    #[test]
    fn parses_paper_fig4_view_and_query() {
        let stmts = parse_statements(
            "CREATE VIEW FilmActors (Title, Categories, Actors) AS \
             SELECT Title, Categories, MakeSet(Refactor) \
             FROM FILM, APPEARS_IN \
             WHERE FILM.Numf = APPEARS_IN.Numf \
             GROUP BY Title, Categories ;\n\
             SELECT Title FROM FilmActors \
             WHERE MEMBER('Adventure', Categories) AND ALL (Salary(Actors) > 10_000) ;",
        )
        .unwrap();
        let Stmt::ViewDecl(v) = &stmts[0] else {
            panic!("expected view")
        };
        assert_eq!(v.columns, vec!["Title", "Categories", "Actors"]);
        assert!(!v.is_recursive());
        let Query::Select(core) = &v.query else {
            panic!("expected select view body")
        };
        assert_eq!(core.group_by.len(), 2);

        let Stmt::Query(Query::Select(q)) = &stmts[1] else {
            panic!("expected query")
        };
        let w = q.where_clause.as_ref().unwrap();
        let Expr::Binary {
            op: BinOp::And,
            right,
            ..
        } = w
        else {
            panic!("expected AND")
        };
        assert!(matches!(**right, Expr::All(_)));
    }

    #[test]
    fn parses_paper_fig5_recursive_view() {
        let stmts = parse_statements(
            "CREATE VIEW BETTER_THAN (Refactor1, Refactor2) AS \
             ( SELECT Refactor1, Refactor2 FROM DOMINATE \
               UNION \
               SELECT B1.Refactor1, B2.Refactor2 \
               FROM BETTER_THAN B1, BETTER_THAN B2 \
               WHERE B1.Refactor2 = B2.Refactor1 ) ;\n\
             SELECT NAME(Refactor1) FROM BETTER_THAN WHERE NAME(Refactor2) = 'Quinn' ;",
        )
        .unwrap();
        let Stmt::ViewDecl(v) = &stmts[0] else {
            panic!("expected view")
        };
        assert!(v.is_recursive());
        let Query::Union(_, rec) = &v.query else {
            panic!("expected union")
        };
        let Query::Select(rec) = rec.as_ref() else {
            panic!("expected select")
        };
        assert_eq!(rec.from[0].alias.as_deref(), Some("B1"));
        assert_eq!(rec.from[1].alias.as_deref(), Some("B2"));
        // qualified columns resolve through aliases
        assert!(matches!(
            &rec.projections[0],
            SelectItem::Expr {
                expr: Expr::Column { qualifier: Some(q), .. },
                ..
            } if q == "B1"
        ));
    }

    #[test]
    fn arithmetic_precedence() {
        let q = parse_query("SELECT a + b * c FROM T").unwrap();
        let Query::Select(core) = q else { panic!() };
        let SelectItem::Expr { expr, .. } = &core.projections[0] else {
            panic!()
        };
        let Expr::Binary {
            op: BinOp::Add,
            right,
            ..
        } = expr
        else {
            panic!("expected + at top")
        };
        assert!(matches!(**right, Expr::Binary { op: BinOp::Mul, .. }));
    }

    #[test]
    fn in_list() {
        let q = parse_query("SELECT a FROM T WHERE a IN (1, 2, 3)").unwrap();
        let Query::Select(core) = q else { panic!() };
        assert!(matches!(
            core.where_clause.unwrap(),
            Expr::InList { list, .. } if list.len() == 3
        ));
    }

    #[test]
    fn distinct_and_wildcard() {
        let q = parse_query("SELECT DISTINCT * FROM T").unwrap();
        let Query::Select(core) = q else { panic!() };
        assert!(core.distinct);
        assert_eq!(core.projections, vec![SelectItem::Wildcard]);
    }

    #[test]
    fn select_alias() {
        let q = parse_query("SELECT Salary(Refactor) AS Pay FROM APPEARS_IN").unwrap();
        let Query::Select(core) = q else { panic!() };
        assert!(matches!(
            &core.projections[0],
            SelectItem::Expr { alias: Some(a), .. } if a == "Pay"
        ));
    }

    #[test]
    fn error_positions() {
        let err = parse_query("SELECT FROM").unwrap_err();
        assert!(matches!(err, EsqlError::Syntax { .. }));
    }

    #[test]
    fn multiple_statements_require_parse_statements() {
        assert!(parse_statement("SELECT a FROM t; SELECT b FROM t;").is_err());
    }

    #[test]
    fn question_marks_number_left_to_right() {
        let q = parse_query("SELECT a FROM T WHERE a > ? AND b = ? ;").unwrap();
        let Query::Select(core) = q else { panic!() };
        let Expr::Binary { left, right, .. } = core.where_clause.unwrap() else {
            panic!("expected AND")
        };
        let Expr::Binary { right: p0, .. } = *left else {
            panic!("expected a > ?")
        };
        let Expr::Binary { right: p1, .. } = *right else {
            panic!("expected b = ?")
        };
        assert_eq!(*p0, Expr::Param(0));
        assert_eq!(*p1, Expr::Param(1));
    }
}

#[cfg(test)]
mod more_tests {
    use super::*;

    #[test]
    fn insert_statement_parses() {
        let stmt = parse_statement(
            "INSERT INTO FILM VALUES (1, 'T', MakeSet('Comedy')), (2, 'U', MakeSet());",
        )
        .unwrap();
        let Stmt::Insert(ins) = stmt else {
            panic!("expected insert")
        };
        assert_eq!(ins.table, "FILM");
        assert_eq!(ins.rows.len(), 2);
        assert_eq!(ins.rows[0].len(), 3);
    }

    #[test]
    fn in_subquery_parses() {
        let q = parse_query("SELECT X FROM T WHERE X IN (SELECT Y FROM U WHERE Y > 0) ;").unwrap();
        let Query::Select(core) = q else { panic!() };
        assert!(matches!(core.where_clause.unwrap(), Expr::InQuery { .. }));
    }

    #[test]
    fn whitespace_and_comments_tolerated() {
        let q = parse_query(
            "SELECT -- projection\n  X\nFROM\n\tT -- relation\nWHERE X = 1 -- filter\n;",
        )
        .unwrap();
        let Query::Select(core) = q else { panic!() };
        assert_eq!(core.from[0].name, "T");
    }

    #[test]
    fn keywords_case_insensitive() {
        let a = parse_query("select X from T where X = 1 group by X;").unwrap();
        let b = parse_query("SELECT X FROM T WHERE X = 1 GROUP BY X;").unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn reserved_words_not_taken_as_aliases() {
        let q = parse_query("SELECT X FROM T WHERE X = 1 ;").unwrap();
        let Query::Select(core) = q else { panic!() };
        assert!(core.from[0].alias.is_none());
    }

    #[test]
    fn deeply_nested_parentheses() {
        let q = parse_query("SELECT X FROM T WHERE ((((X = 1)))) ;").unwrap();
        let Query::Select(core) = q else { panic!() };
        assert!(matches!(
            core.where_clause.unwrap(),
            Expr::Binary { op: BinOp::Eq, .. }
        ));
    }
}
