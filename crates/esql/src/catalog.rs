//! The catalog: declared types, tables and views.
//!
//! DDL statements are *installed* into the catalog, converting syntactic
//! [`TypeRef`]s into semantic [`eds_adt::Type`]s. The catalog answers the
//! schema questions the translator and rewriter ask: column lookup by
//! name, view expansion, recursion detection, and attribute-as-function
//! resolution on object and tuple types.

use std::collections::HashMap;

use eds_adt::{Field, MethodSig, Type, TypeBody, TypeDef, TypeRegistry};

use crate::ast::{Stmt, TableDecl, TypeDecl, TypeDeclBody, TypeRef, ViewDecl};
use crate::error::{EsqlError, EsqlResult};

/// A relation schema: named, typed columns.
#[derive(Debug, Clone, PartialEq)]
pub struct TableSchema {
    /// Relation name.
    pub name: String,
    /// Columns in declaration order.
    pub columns: Vec<Field>,
}

impl TableSchema {
    /// Index and type of a column by (case-insensitive) name.
    pub fn column(&self, name: &str) -> Option<(usize, &Field)> {
        self.columns
            .iter()
            .enumerate()
            .find(|(_, f)| f.name.eq_ignore_ascii_case(name))
    }

    /// Number of columns.
    pub fn arity(&self) -> usize {
        self.columns.len()
    }
}

/// The database catalog.
#[derive(Debug, Default, Clone)]
pub struct Catalog {
    /// User type registry.
    pub types: TypeRegistry,
    tables: HashMap<String, TableSchema>,
    views: HashMap<String, ViewDecl>,
    view_schemas: HashMap<String, TableSchema>,
}

impl Catalog {
    /// Empty catalog.
    pub fn new() -> Self {
        Self::default()
    }

    /// Install a DDL statement. Queries are rejected.
    pub fn install(&mut self, stmt: &Stmt) -> EsqlResult<()> {
        match stmt {
            Stmt::TypeDecl(t) => self.install_type(t),
            Stmt::TableDecl(t) => self.install_table(t),
            Stmt::ViewDecl(v) => self.install_view(v),
            Stmt::Query(_) | Stmt::Insert(_) => Err(EsqlError::TypeError(
                "queries and inserts cannot be installed into the catalog".into(),
            )),
        }
    }

    /// Convert a syntactic type reference into a semantic type.
    pub fn lower_typeref(&self, r: &TypeRef) -> EsqlResult<Type> {
        self.lower_typeref_with_self(r, None)
    }

    /// Like [`Catalog::lower_typeref`] but permitting a reference to the
    /// type currently being defined (method signatures mention the
    /// receiver type, e.g. `FUNCTION IncreaseSalary(This Actor, ...)`).
    fn lower_typeref_with_self(&self, r: &TypeRef, self_name: Option<&str>) -> EsqlResult<Type> {
        Ok(match r {
            TypeRef::Bool => Type::Bool,
            TypeRef::Int => Type::Int,
            TypeRef::Real => Type::Real,
            TypeRef::Numeric => Type::Numeric,
            TypeRef::Char => Type::Char,
            TypeRef::Named(n) => {
                if !self.types.contains(n) && self_name != Some(n.as_str()) {
                    return Err(EsqlError::Adt(eds_adt::AdtError::UnknownType(n.clone())));
                }
                Type::Named(n.clone())
            }
            TypeRef::Tuple(fields) => Type::Tuple(
                fields
                    .iter()
                    .map(|(n, t)| {
                        Ok(Field::new(
                            n.clone(),
                            self.lower_typeref_with_self(t, self_name)?,
                        ))
                    })
                    .collect::<EsqlResult<Vec<_>>>()?,
            ),
            TypeRef::Coll(kind, elem) => Type::Coll(
                *kind,
                Box::new(self.lower_typeref_with_self(elem, self_name)?),
            ),
        })
    }

    fn install_type(&mut self, decl: &TypeDecl) -> EsqlResult<()> {
        let body = match &decl.body {
            TypeDeclBody::Enumeration(vals) => TypeBody::Enumeration(vals.clone()),
            TypeDeclBody::Structure(r) => TypeBody::Structure(self.lower_typeref(r)?),
        };
        let methods = decl
            .functions
            .iter()
            .map(|f| {
                Ok(MethodSig {
                    name: f.name.clone(),
                    params: f
                        .params
                        .iter()
                        .map(|(_, t)| self.lower_typeref_with_self(t, Some(&decl.name)))
                        .collect::<EsqlResult<Vec<_>>>()?,
                    result: f
                        .result
                        .as_ref()
                        .map(|t| self.lower_typeref_with_self(t, Some(&decl.name)))
                        .transpose()?,
                })
            })
            .collect::<EsqlResult<Vec<_>>>()?;
        self.types.define(TypeDef {
            name: decl.name.clone(),
            body,
            is_object: decl.is_object,
            supertype: decl.supertype.clone(),
            methods,
        })?;
        Ok(())
    }

    fn install_table(&mut self, decl: &TableDecl) -> EsqlResult<()> {
        let key = decl.name.to_ascii_uppercase();
        if self.tables.contains_key(&key) || self.views.contains_key(&key) {
            return Err(EsqlError::DuplicateRelation(decl.name.clone()));
        }
        let columns = decl
            .columns
            .iter()
            .map(|(n, t)| Ok(Field::new(n.clone(), self.lower_typeref(t)?)))
            .collect::<EsqlResult<Vec<_>>>()?;
        self.tables.insert(
            key,
            TableSchema {
                name: decl.name.clone(),
                columns,
            },
        );
        Ok(())
    }

    fn install_view(&mut self, decl: &ViewDecl) -> EsqlResult<()> {
        let key = decl.name.to_ascii_uppercase();
        if self.tables.contains_key(&key) || self.views.contains_key(&key) {
            return Err(EsqlError::DuplicateRelation(decl.name.clone()));
        }
        self.views.insert(key, decl.clone());
        Ok(())
    }

    /// Record the inferred schema of a view (computed by the translator,
    /// which knows expression types).
    pub fn set_view_schema(&mut self, name: &str, schema: TableSchema) {
        self.view_schemas.insert(name.to_ascii_uppercase(), schema);
    }

    /// Schema of a base table.
    pub fn table(&self, name: &str) -> Option<&TableSchema> {
        self.tables.get(&name.to_ascii_uppercase())
    }

    /// Declaration of a view.
    pub fn view(&self, name: &str) -> Option<&ViewDecl> {
        self.views.get(&name.to_ascii_uppercase())
    }

    /// Schema of any relation: base table, or a view whose schema has been
    /// inferred.
    pub fn relation(&self, name: &str) -> Option<&TableSchema> {
        self.table(name)
            .or_else(|| self.view_schemas.get(&name.to_ascii_uppercase()))
    }

    /// Whether `name` refers to any relation.
    pub fn is_relation(&self, name: &str) -> bool {
        let key = name.to_ascii_uppercase();
        self.tables.contains_key(&key) || self.views.contains_key(&key)
    }

    /// Names of all base tables (sorted).
    pub fn table_names(&self) -> Vec<&str> {
        let mut names: Vec<&str> = self.tables.values().map(|t| t.name.as_str()).collect();
        names.sort_unstable();
        names
    }

    /// Names of all views (sorted).
    pub fn view_names(&self) -> Vec<&str> {
        let mut names: Vec<&str> = self.views.values().map(|v| v.name.as_str()).collect();
        names.sort_unstable();
        names
    }

    /// Resolve an *attribute applied as a function* (Section 2.1): find
    /// the field `attr` in the given type, looking through object
    /// references (which require a `VALUE` dereference first) and named
    /// tuple types (following the supertype chain).
    ///
    /// Returns `(needs_value_deref, field_index, field_type)`.
    pub fn attribute_of(&self, ty: &Type, attr: &str) -> Option<(bool, usize, Type)> {
        match ty {
            Type::Tuple(fields) => fields
                .iter()
                .enumerate()
                .find(|(_, f)| f.name.eq_ignore_ascii_case(attr))
                .map(|(i, f)| (false, i, f.ty.clone())),
            Type::Named(n) => {
                let def = self.types.get(n).ok()?;
                let fields = self.types.fields_of(n).ok()?;
                let hit = fields
                    .iter()
                    .enumerate()
                    .find(|(_, f)| f.name.eq_ignore_ascii_case(attr))?;
                Some((def.is_object, hit.0, hit.1.ty.clone()))
            }
            // Function mapping over collections: Salary(Actors) where
            // Actors : SET OF Actor projects each element.
            Type::Coll(kind, elem) => {
                let (deref, idx, t) = self.attribute_of(elem, attr)?;
                Some((deref, idx, Type::Coll(*kind, Box::new(t))))
            }
            _ => None,
        }
    }
}

/// Install every DDL statement from a source text into the catalog; query
/// statements are returned for separate processing.
pub fn install_source(catalog: &mut Catalog, src: &str) -> EsqlResult<Vec<Stmt>> {
    let stmts = crate::parser::parse_statements(src)?;
    let mut queries = Vec::new();
    for stmt in stmts {
        match stmt {
            Stmt::Query(_) | Stmt::Insert(_) => queries.push(stmt),
            ddl => catalog.install(&ddl)?,
        }
    }
    Ok(queries)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The Figure-2 schema of the paper.
    pub fn film_schema() -> &'static str {
        "TYPE Category ENUMERATION OF ('Comedy', 'Adventure', 'Science Fiction', 'Western') ;\n\
         TYPE Point TUPLE (ABS : REAL, ORD : REAL) ;\n\
         TYPE Person OBJECT TUPLE ( Name : CHAR, Firstname : SET OF CHAR, Caricature : LIST OF Point) ;\n\
         TYPE Actor SUBTYPE OF Person OBJECT TUPLE (Salary : NUMERIC) \
           FUNCTION IncreaseSalary(This Actor, Val NUMERIC) ;\n\
         TYPE Text LIST OF CHAR ;\n\
         TYPE SetCategory SET OF Category ;\n\
         TYPE Pairs LIST OF TUPLE (Pros : INT, Cons : INT) ;\n\
         TABLE FILM ( Numf : NUMERIC, Title : Text, Categories : SetCategory) ;\n\
         TABLE APPEARS_IN ( Numf : NUMERIC, Refactor : Actor) ;\n\
         TABLE DOMINATE ( Numf : NUMERIC, Refactor1 : Actor, Refactor2 : Actor, Score : Pairs) ;"
    }

    fn catalog() -> Catalog {
        let mut c = Catalog::new();
        install_source(&mut c, film_schema()).unwrap();
        c
    }

    #[test]
    fn installs_figure2_schema() {
        let c = catalog();
        assert_eq!(c.table_names(), vec!["APPEARS_IN", "DOMINATE", "FILM"]);
        let film = c.table("film").unwrap();
        assert_eq!(film.arity(), 3);
        let (idx, f) = film.column("categories").unwrap();
        assert_eq!(idx, 2);
        assert_eq!(f.ty, Type::Named("SetCategory".into()));
    }

    #[test]
    fn attribute_through_object_needs_value() {
        let c = catalog();
        // Salary on an Actor object: dereference + index 2 (Name,
        // Firstname, Caricature inherited from Person, then Salary).
        let (deref, idx, ty) = c
            .attribute_of(&Type::Named("Actor".into()), "Salary")
            .unwrap();
        assert!(deref);
        assert_eq!(idx, 3);
        assert_eq!(ty, Type::Numeric);
        // Name is inherited from Person.
        let (_, idx, ty) = c
            .attribute_of(&Type::Named("Actor".into()), "Name")
            .unwrap();
        assert_eq!(idx, 0);
        assert_eq!(ty, Type::Char);
    }

    #[test]
    fn attribute_maps_over_collections() {
        let c = catalog();
        let set_of_actor = Type::set_of(Type::Named("Actor".into()));
        let (deref, _, ty) = c.attribute_of(&set_of_actor, "Salary").unwrap();
        assert!(deref);
        assert_eq!(ty, Type::set_of(Type::Numeric));
    }

    #[test]
    fn duplicate_relation_rejected() {
        let mut c = catalog();
        let err = install_source(&mut c, "TABLE FILM (X : INT);").unwrap_err();
        assert_eq!(err, EsqlError::DuplicateRelation("FILM".into()));
    }

    #[test]
    fn unknown_type_in_table_rejected() {
        let mut c = Catalog::new();
        let err = install_source(&mut c, "TABLE T (X : Missing);").unwrap_err();
        assert!(matches!(err, EsqlError::Adt(_)));
    }

    #[test]
    fn views_tracked_separately() {
        let mut c = catalog();
        install_source(
            &mut c,
            "CREATE VIEW AdventureFilms (Title) AS \
             SELECT Title FROM FILM WHERE MEMBER('Adventure', Categories);",
        )
        .unwrap();
        assert!(c.view("adventurefilms").is_some());
        assert!(c.is_relation("AdventureFilms"));
        assert!(c.relation("AdventureFilms").is_none()); // schema not yet inferred
        c.set_view_schema(
            "AdventureFilms",
            TableSchema {
                name: "AdventureFilms".into(),
                columns: vec![Field::new("Title", Type::Named("Text".into()))],
            },
        );
        assert_eq!(c.relation("AdventureFilms").unwrap().arity(), 1);
    }

    #[test]
    fn queries_returned_not_installed() {
        let mut c = Catalog::new();
        let queries = install_source(&mut c, "TABLE T (X : INT); SELECT X FROM T;").unwrap();
        assert_eq!(queries.len(), 1);
    }
}
