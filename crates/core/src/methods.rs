//! The optimizer's built-in method library.
//!
//! Methods are the external functions rule conclusions call to compute
//! derived bindings (Section 4.1: "these methods can be defined by the
//! database implementor as methods of specific ADTs"; here they are Rust
//! closures registered in the [`MethodRegistry`]).
//!
//! | Method | Role | Used by |
//! |---|---|---|
//! | `SUBSTITUTE(t, x*, z, b, t')` | remap outer attribute refs across a merged search | search merging (Fig 7) |
//! | `SHIFT(t, x*, t')` | shift relation indices of an inlined qualification | search merging (Fig 7) |
//! | `SCHEMA(z, e')` | identity projection list for a relation term | nest pushing (Fig 8) |
//! | `SPLITNEST(f, x*, a, b, fi, fo)` | split a qualification at a nest boundary | nest pushing (Fig 8) |
//! | `ADORNMENT(x*, r, f, s)` | compute the binding signature of a fixpoint | Alexander (Fig 9) |
//! | `ALEXANDER(r, e, x*, f, s, u, f')` | push selection into the fixpoint | Alexander (Fig 9) |
//! | `ADDCONSTRAINTS(l, f, f')` | conjoin applicable integrity constraints | semantic rules (Fig 10/11) |
//! | `TRANSITIVITY(f, f')` | transitivity of `=` and `INCLUDE` | implicit knowledge (Fig 11) |
//! | `EQSUBST(f, f')` | equality substitution of constants | implicit knowledge (Fig 11) |
//! | `SIMPLIFYQ(f, f')` | conjunct-level simplification and inconsistency detection | simplification (Fig 12) |

use eds_adt::Value;
use eds_rewrite::methods::{bind_output, resolve, MethodSig};
use eds_rewrite::{Bindings, MethodRegistry, RewriteError, RwResult, Term, TermEnv};

use crate::magic;

/// Split a qualification term into its conjuncts.
pub fn flatten_and(t: &Term) -> Vec<Term> {
    match t.as_app() {
        Some(("AND", [a, b])) => {
            let mut out = flatten_and(a);
            out.extend(flatten_and(b));
            out
        }
        _ => vec![t.clone()],
    }
}

/// Rebuild a conjunction (TRUE for no conjuncts).
pub fn build_and(mut conjuncts: Vec<Term>) -> Term {
    match conjuncts.len() {
        0 => Term::bool(true),
        1 => conjuncts.remove(0),
        _ => {
            let first = conjuncts.remove(0);
            conjuncts
                .into_iter()
                .fold(first, |acc, c| Term::app("AND", vec![acc, c]))
        }
    }
}

/// Map every `ATTR(rel, attr)` node through `f`.
pub fn map_attr_refs(t: &Term, f: &impl Fn(i64, i64) -> Term) -> Term {
    if let Some((rel, attr)) = t.as_attr() {
        return f(rel, attr);
    }
    match t {
        Term::App(h, args) => Term::App(*h, args.iter().map(|a| map_attr_refs(a, f)).collect()),
        other => other.clone(),
    }
}

/// Collect every `(rel, attr)` reference.
pub fn collect_attr_refs(t: &Term) -> Vec<(i64, i64)> {
    let mut out = Vec::new();
    fn walk(t: &Term, out: &mut Vec<(i64, i64)>) {
        if let Some(ra) = t.as_attr() {
            out.push(ra);
            return;
        }
        if let Term::App(_, args) = t {
            args.iter().for_each(|a| walk(a, out));
        }
    }
    walk(t, &mut out);
    out
}

/// Shift all relation indices by `delta`.
pub fn shift_rels(t: &Term, delta: i64) -> Term {
    map_attr_refs(t, &|rel, attr| Term::attr(rel + delta, attr))
}

/// Resolve an argument that should denote a list: a bound collection
/// variable segment or a `LIST` term.
fn resolve_list(arg: &Term, binds: &Bindings) -> Option<Vec<Term>> {
    let r = resolve(arg, binds);
    match r.as_app() {
        Some(("LIST", items)) => Some(items.to_vec()),
        _ => None,
    }
}

fn method_err(method: &str, message: impl Into<String>) -> RewriteError {
    RewriteError::MethodFailed {
        method: method.to_owned(),
        message: message.into(),
    }
}

/// Register every optimizer method into a registry, with its declared
/// signature (argument count and 0-based output positions) so rule
/// registration can statically check every call site.
pub fn register_core_methods(reg: &mut MethodRegistry) {
    let sig = |arity, outputs| MethodSig { arity, outputs };
    reg.register_with_sig("SUBSTITUTE", sig(5, &[4]), substitute);
    reg.register_with_sig("SHIFT", sig(3, &[2]), shift);
    reg.register_with_sig("SCHEMA", sig(2, &[1]), schema);
    reg.register_with_sig("SPLITNEST", sig(6, &[4, 5]), splitnest);
    reg.register_with_sig("ADORNMENT", sig(4, &[3]), adornment);
    reg.register_with_sig("ALEXANDER", sig(7, &[5, 6]), alexander);
    reg.register_with_sig("ADDCONSTRAINTS", sig(3, &[2]), addconstraints);
    reg.register_with_sig("TRANSITIVITY", sig(2, &[1]), transitivity);
    reg.register_with_sig("EQSUBST", sig(2, &[1]), eqsubst);
    reg.register_with_sig("SIMPLIFYQ", sig(2, &[1]), simplifyq);
    reg.register_with_sig("REFER", MethodSig::predicate(2), refer);
}

// ------------------------------------------------------- search merging

/// `SUBSTITUTE(t, x*, z, b, t')`: `t` is a qualification or projection
/// list of the *outer* search whose input list was `(x*, SEARCH(z, g, b),
/// v*)`; after merging, the inner inputs `z` are spliced in place of the
/// inner search. References `rel <= k` (into `x*`) are unchanged;
/// `rel == k+1` (the inner search's output) inline the inner projection
/// expression shifted by `k`; `rel > k+1` shift by `|z| - 1`.
fn substitute(args: &[Term], binds: &mut Bindings, _env: &dyn TermEnv) -> RwResult<bool> {
    if args.len() != 5 {
        return Err(method_err("SUBSTITUTE", "expected 5 arguments"));
    }
    let t = resolve(&args[0], binds);
    let xs = resolve_list(&args[1], binds)
        .ok_or_else(|| method_err("SUBSTITUTE", "x* must resolve to a list"))?;
    let z = resolve_list(&args[2], binds)
        .ok_or_else(|| method_err("SUBSTITUTE", "z must resolve to a list"))?;
    let b = resolve_list(&args[3], binds)
        .ok_or_else(|| method_err("SUBSTITUTE", "b must resolve to a list"))?;
    let k = xs.len() as i64;
    let m = z.len() as i64;

    // Reject out-of-range references into the inner projection.
    if collect_attr_refs(&t)
        .iter()
        .any(|&(rel, attr)| rel == k + 1 && (attr < 1 || attr as usize > b.len()))
    {
        return Ok(false);
    }
    let new = map_attr_refs(&t, &|rel, attr| {
        if rel <= k {
            Term::attr(rel, attr)
        } else if rel == k + 1 {
            shift_rels(&b[(attr - 1) as usize], k)
        } else {
            Term::attr(rel + m - 1, attr)
        }
    });
    bind_output(&args[4], new, binds, "SUBSTITUTE")
}

/// `SHIFT(t, x*, t')`: shift every relation index in `t` by the length
/// of the segment `x*` (used to renumber the inner qualification when it
/// is spliced behind `x*`).
fn shift(args: &[Term], binds: &mut Bindings, _env: &dyn TermEnv) -> RwResult<bool> {
    if args.len() != 3 {
        return Err(method_err("SHIFT", "expected 3 arguments"));
    }
    let t = resolve(&args[0], binds);
    let xs = resolve_list(&args[1], binds)
        .ok_or_else(|| method_err("SHIFT", "x* must resolve to a list"))?;
    bind_output(&args[2], shift_rels(&t, xs.len() as i64), binds, "SHIFT")
}

/// `SCHEMA(z, e')`: identity projection list for the relation term (or
/// list of relation terms) `z` — `LIST(1.1, ..., 1.n)`.
fn schema(args: &[Term], binds: &mut Bindings, env: &dyn TermEnv) -> RwResult<bool> {
    if args.len() != 2 {
        return Err(method_err("SCHEMA", "expected 2 arguments"));
    }
    let z = resolve(&args[0], binds);
    let inputs: Vec<Term> = match z.as_app() {
        Some(("LIST", items)) => items.to_vec(),
        _ => vec![z.clone()],
    };
    let mut proj = Vec::new();
    for (i, input) in inputs.iter().enumerate() {
        let Some(arity) = env.rel_arity(input) else {
            return Ok(false);
        };
        for a in 1..=arity {
            proj.push(Term::attr((i + 1) as i64, a as i64));
        }
    }
    bind_output(&args[1], Term::list(proj), binds, "SCHEMA")
}

/// `REFER(a, f)`: Figure 8's boolean external function — true when some
/// attribute reference of `f` falls in the index list `a`. (The built-in
/// nest-pushing rule uses the richer `SPLITNEST`; `REFER` is provided for
/// user rules written exactly as in the paper.)
fn refer(args: &[Term], binds: &mut Bindings, _env: &dyn TermEnv) -> RwResult<bool> {
    if args.len() != 2 {
        return Err(method_err("REFER", "expected 2 arguments"));
    }
    let attrs = resolve_list(&args[0], binds)
        .ok_or_else(|| method_err("REFER", "first argument must be an index list"))?;
    let indices: Vec<i64> = attrs
        .iter()
        .filter_map(|t| t.as_const().and_then(|v| v.as_int().ok()))
        .collect();
    let f = resolve(&args[1], binds);
    Ok(collect_attr_refs(&f)
        .iter()
        .any(|(_, attr)| indices.contains(attr)))
}

// --------------------------------------------------------- nest pushing

/// `SPLITNEST(f, x*, a, b, fi, fo)`: the nest operator sits at input
/// position `k = |x*| + 1`; its output exposes the group attributes
/// (`b`, 1-based positions into the nest input) first and the collection
/// last. A conjunct is *pushable* when all its references are
/// `ATTR(k, i)` with `i` a group position. `fi` receives the pushed
/// conjuncts remapped below the nest (`ATTR(1, b[i])`), `fo` the rest.
/// Fails (returns false) when nothing is pushable.
fn splitnest(args: &[Term], binds: &mut Bindings, _env: &dyn TermEnv) -> RwResult<bool> {
    if args.len() != 6 {
        return Err(method_err("SPLITNEST", "expected 6 arguments"));
    }
    let f = resolve(&args[0], binds);
    let xs = resolve_list(&args[1], binds)
        .ok_or_else(|| method_err("SPLITNEST", "x* must resolve to a list"))?;
    let group = resolve_list(&args[3], binds)
        .ok_or_else(|| method_err("SPLITNEST", "group positions must be a list"))?;
    let group: Vec<i64> = group
        .iter()
        .filter_map(|t| t.as_const().and_then(|v| v.as_int().ok()))
        .collect();
    let k = xs.len() as i64 + 1;
    let gl = group.len() as i64;

    let mut pushed = Vec::new();
    let mut rest = Vec::new();
    for c in flatten_and(&f) {
        let refs = collect_attr_refs(&c);
        let pushable = !refs.is_empty()
            && refs
                .iter()
                .all(|&(rel, attr)| rel == k && attr >= 1 && attr <= gl);
        if pushable {
            pushed.push(map_attr_refs(&c, &|_, attr| {
                Term::attr(1, group[(attr - 1) as usize])
            }));
        } else {
            rest.push(c);
        }
    }
    if pushed.is_empty() {
        return Ok(false);
    }
    Ok(
        bind_output(&args[4], build_and(pushed), binds, "SPLITNEST")?
            && bind_output(&args[5], build_and(rest), binds, "SPLITNEST")?,
    )
}

// ------------------------------------------------- fixpoint reduction

/// Bound conjuncts of `f` for the relation at position `k`: conjuncts of
/// the form `ATTR(k, j) = const` (either orientation). Returns
/// `(j, constant, conjunct)` triples.
fn bound_conjuncts(f: &Term, k: i64) -> Vec<(usize, Value, Term)> {
    let mut out = Vec::new();
    for c in flatten_and(f) {
        if let Some(("=", [l, r])) = c.as_app() {
            let pair = match (l.as_attr(), r.as_const(), r.as_attr(), l.as_const()) {
                (Some((rel, j)), Some(v), _, _) if rel == k => Some((j, v.clone())),
                (_, _, Some((rel, j)), Some(v)) if rel == k => Some((j, v.clone())),
                _ => None,
            };
            if let Some((j, v)) = pair {
                out.push((j as usize, v, c.clone()));
            }
        }
    }
    out
}

/// `ADORNMENT(x*, r, f, s)`: compute the binding signature of the
/// fixpoint `r` sitting at input position `|x*| + 1` under qualification
/// `f` — e.g. `"fb"` when the second attribute is bound by a constant.
/// Fails when no attribute is bound (nothing to push).
fn adornment(args: &[Term], binds: &mut Bindings, env: &dyn TermEnv) -> RwResult<bool> {
    if args.len() != 4 {
        return Err(method_err("ADORNMENT", "expected 4 arguments"));
    }
    let xs = resolve_list(&args[0], binds)
        .ok_or_else(|| method_err("ADORNMENT", "x* must resolve to a list"))?;
    let r = resolve(&args[1], binds);
    let f = resolve(&args[2], binds);
    let k = xs.len() as i64 + 1;
    let bound = bound_conjuncts(&f, k);
    if bound.is_empty() {
        return Ok(false);
    }
    let arity = env
        .rel_arity(&r)
        .unwrap_or_else(|| bound.iter().map(|(j, _, _)| *j).max().unwrap_or(1));
    let sig: String = (1..=arity)
        .map(|j| {
            if bound.iter().any(|(bj, _, _)| *bj == j) {
                'b'
            } else {
                'f'
            }
        })
        .collect();
    bind_output(&args[3], Term::str(sig), binds, "ADORNMENT")
}

/// `ALEXANDER(r, e, x*, f, s, u, f')`: apply the Alexander/magic-sets
/// transformation to the fixpoint `fix(r, e)` given the signature `s`:
/// `u` is bound to the reduced fixpoint (selection pushed into the seed,
/// recursion restricted to relevant facts) and `f'` to the outer
/// qualification with the pushed conjuncts removed. Fails when the
/// fixpoint's shape is outside the supported class (see
/// [`crate::magic`]); the query then stays as-is, which is always safe.
fn alexander(args: &[Term], binds: &mut Bindings, _env: &dyn TermEnv) -> RwResult<bool> {
    if args.len() != 7 {
        return Err(method_err("ALEXANDER", "expected 7 arguments"));
    }
    let r = resolve(&args[0], binds);
    let e = resolve(&args[1], binds);
    let xs = resolve_list(&args[2], binds)
        .ok_or_else(|| method_err("ALEXANDER", "x* must resolve to a list"))?;
    let f = resolve(&args[3], binds);
    let name = match r.as_app() {
        Some((n, [])) => n.to_owned(),
        _ => return Ok(false),
    };
    let k = xs.len() as i64 + 1;
    let bound = bound_conjuncts(&f, k);
    if bound.is_empty() {
        return Ok(false);
    }
    let Ok(body) = eds_lera::expr_from_term(&e) else {
        return Ok(false);
    };
    let bindings: Vec<(usize, Value)> = bound.iter().map(|(j, v, _)| (*j, v.clone())).collect();
    let Some(reduced) = magic::alexander(&name, &body, &bindings) else {
        return Ok(false);
    };
    let u = eds_lera::expr_to_term(&reduced);
    let removed: Vec<&Term> = bound.iter().map(|(_, _, c)| c).collect();
    let remaining: Vec<Term> = flatten_and(&f)
        .into_iter()
        .filter(|c| !removed.contains(&c))
        .collect();
    Ok(bind_output(&args[5], u, binds, "ALEXANDER")?
        && bind_output(&args[6], build_and(remaining), binds, "ALEXANDER")?)
}

// ------------------------------------------------------ semantic rules

/// `ADDCONSTRAINTS(l, f, f')`: for every attribute reference in `f`,
/// instantiate the integrity constraints applicable to its type (via
/// `ISA`, so supertype constraints reach subtypes) and conjoin the ones
/// not already present. Fails when nothing new is added.
fn addconstraints(args: &[Term], binds: &mut Bindings, env: &dyn TermEnv) -> RwResult<bool> {
    if args.len() != 3 {
        return Err(method_err("ADDCONSTRAINTS", "expected 3 arguments"));
    }
    let inputs = resolve_list(&args[0], binds)
        .ok_or_else(|| method_err("ADDCONSTRAINTS", "l must resolve to a list"))?;
    let f = resolve(&args[1], binds);
    let schemas: Vec<Option<Vec<eds_adt::Type>>> =
        inputs.iter().map(|i| env.rel_schema(i)).collect();

    let mut conjuncts = flatten_and(&f);
    let existing = conjuncts.clone();
    let mut added = false;

    let mut seen_refs: Vec<(i64, i64)> = Vec::new();
    for (rel, attr) in collect_attr_refs(&f) {
        if seen_refs.contains(&(rel, attr)) {
            continue;
        }
        seen_refs.push((rel, attr));
        let Some(Some(schema)) = schemas.get((rel - 1) as usize) else {
            continue;
        };
        let Some(ty) = schema.get((attr - 1) as usize) else {
            continue;
        };
        for template in env.constraints_for(ty) {
            let inst = subst_var(&template, "x", &Term::attr(rel, attr));
            if !existing.contains(&inst) && !conjuncts.contains(&inst) {
                conjuncts.push(inst);
                added = true;
            }
        }
    }
    if !added {
        return Ok(false);
    }
    bind_output(&args[2], build_and(conjuncts), binds, "ADDCONSTRAINTS")
}

fn subst_var(t: &Term, var: &str, replacement: &Term) -> Term {
    match t {
        Term::Var(v) if v == var => replacement.clone(),
        Term::App(h, args) => Term::App(
            *h,
            args.iter()
                .map(|a| subst_var(a, var, replacement))
                .collect(),
        ),
        other => other.clone(),
    }
}

/// `TRANSITIVITY(f, f')`: one step of the Figure-11 transitivity rules —
/// `x = y ∧ y = z` adds `x = z`; `INCLUDE(x,y) ∧ INCLUDE(y,z)` adds
/// `INCLUDE(x,z)`. Fails when nothing new can be derived.
fn transitivity(args: &[Term], binds: &mut Bindings, _env: &dyn TermEnv) -> RwResult<bool> {
    if args.len() != 2 {
        return Err(method_err("TRANSITIVITY", "expected 2 arguments"));
    }
    let f = resolve(&args[0], binds);
    let mut conjuncts = flatten_and(&f);

    // Equalities in both orientations.
    let mut eqs: Vec<(Term, Term)> = Vec::new();
    let mut includes: Vec<(Term, Term)> = Vec::new();
    for c in &conjuncts {
        match c.as_app() {
            Some(("=", [l, r])) => {
                eqs.push((l.clone(), r.clone()));
                eqs.push((r.clone(), l.clone()));
            }
            Some(("INCLUDE", [l, r])) => includes.push((l.clone(), r.clone())),
            _ => {}
        }
    }

    let has_eq = |cs: &[Term], a: &Term, b: &Term| {
        cs.iter().any(|c| match c.as_app() {
            Some(("=", [l, r])) => (l == a && r == b) || (l == b && r == a),
            _ => false,
        })
    };
    let mut added = false;
    let snapshot = eqs.clone();
    for (a, b) in &snapshot {
        for (c, d) in &snapshot {
            if b == c && a != d && !has_eq(&conjuncts, a, d) {
                // Avoid deriving trivial const = const chains.
                if a.as_const().is_some() && d.as_const().is_some() {
                    continue;
                }
                conjuncts.push(Term::app("=", vec![a.clone(), d.clone()]));
                added = true;
            }
        }
    }
    let inc_snapshot = includes.clone();
    for (a, b) in &inc_snapshot {
        for (c, d) in &inc_snapshot {
            if b == c && a != d {
                let derived = Term::app("INCLUDE", vec![a.clone(), d.clone()]);
                if !conjuncts.contains(&derived) {
                    conjuncts.push(derived);
                    added = true;
                }
            }
        }
    }
    if !added {
        return Ok(false);
    }
    bind_output(&args[1], build_and(conjuncts), binds, "TRANSITIVITY")
}

/// `EQSUBST(f, f')`: the Figure-11 equality-substitution rule —
/// `(X = Y) ∧ p(X)` adds `p(Y)`. Constants substitute for terms, and
/// term-for-term substitution is applied in both directions (so
/// `1.3 = 1.4 ∧ 1.3 > 100` derives `1.4 > 100`, exposing cross-conjunct
/// contradictions to the simplifier). Fails when nothing new is derived.
fn eqsubst(args: &[Term], binds: &mut Bindings, _env: &dyn TermEnv) -> RwResult<bool> {
    if args.len() != 2 {
        return Err(method_err("EQSUBST", "expected 2 arguments"));
    }
    let f = resolve(&args[0], binds);
    let mut conjuncts = flatten_and(&f);

    // (from, to) substitution pairs from equality conjuncts.
    let mut substitutions: Vec<(Term, Term)> = Vec::new();
    for c in &conjuncts {
        if let Some(("=", [l, r])) = c.as_app() {
            match (l.as_const(), r.as_const()) {
                (None, Some(_)) => substitutions.push((l.clone(), r.clone())),
                (Some(_), None) => substitutions.push((r.clone(), l.clone())),
                (None, None) => {
                    // Term-for-term: both directions.
                    substitutions.push((l.clone(), r.clone()));
                    substitutions.push((r.clone(), l.clone()));
                }
                (Some(_), Some(_)) => {}
            }
        }
    }
    let mut added = false;
    let snapshot = conjuncts.clone();
    for (from, to) in &substitutions {
        for c in &snapshot {
            // Skip the defining equality itself.
            if let Some(("=", [l, r])) = c.as_app() {
                if (l == from && r == to) || (r == from && l == to) {
                    continue;
                }
            }
            let derived = subst_term(c, from, to);
            if derived != *c && !conjuncts.contains(&derived) {
                conjuncts.push(derived);
                added = true;
            }
        }
    }
    if !added {
        return Ok(false);
    }
    bind_output(&args[1], build_and(conjuncts), binds, "EQSUBST")
}

fn subst_term(t: &Term, from: &Term, to: &Term) -> Term {
    if t == from {
        return to.clone();
    }
    match t {
        Term::App(h, args) => Term::App(*h, args.iter().map(|a| subst_term(a, from, to)).collect()),
        other => other.clone(),
    }
}

/// `SIMPLIFYQ(f, f')`: conjunct-level simplification — drop `TRUE` and
/// duplicate conjuncts, collapse to `FALSE` on any false conjunct, on
/// contradictory comparisons over the same operands (`x > y ∧ x <= y`),
/// or on two distinct constant equalities for the same term. Fails when
/// `f` is already simplified.
fn simplifyq(args: &[Term], binds: &mut Bindings, _env: &dyn TermEnv) -> RwResult<bool> {
    if args.len() != 2 {
        return Err(method_err("SIMPLIFYQ", "expected 2 arguments"));
    }
    let f = resolve(&args[0], binds);
    let original = flatten_and(&f);

    let mut kept: Vec<Term> = Vec::new();
    let mut falsified = false;
    for c in &original {
        match c.as_const() {
            Some(Value::Bool(true)) => continue,
            Some(Value::Bool(false)) => {
                falsified = true;
                break;
            }
            _ => {}
        }
        if !kept.contains(c) {
            kept.push(c.clone());
        }
    }

    // Possible comparison outcomes {<, =, >} per operand pair.
    fn outcomes(op: &str) -> Option<u8> {
        // bit 0: <, bit 1: =, bit 2: >
        Some(match op {
            "<" => 0b001,
            "=" => 0b010,
            ">" => 0b100,
            "<=" => 0b011,
            ">=" => 0b110,
            "<>" => 0b101,
            _ => return None,
        })
    }
    fn mirror(mask: u8) -> u8 {
        (mask & 0b010) | ((mask & 0b001) << 2) | ((mask & 0b100) >> 2)
    }

    if !falsified {
        use std::collections::HashMap;
        let mut per_pair: HashMap<(Term, Term), u8> = HashMap::new();
        let mut eq_consts: HashMap<Term, Vec<Value>> = HashMap::new();
        for c in &kept {
            if let Some((op, [l, r])) = c.as_app() {
                if let Some(mask) = outcomes(op) {
                    // Canonical orientation: smaller term first.
                    let (key, mask) = if l <= r {
                        ((l.clone(), r.clone()), mask)
                    } else {
                        ((r.clone(), l.clone()), mirror(mask))
                    };
                    let entry = per_pair.entry(key).or_insert(0b111);
                    *entry &= mask;
                    if *entry == 0 {
                        falsified = true;
                        break;
                    }
                }
                if op == "=" {
                    match (l.as_const(), r.as_const()) {
                        (None, Some(v)) => eq_consts.entry(l.clone()).or_default().push(v.clone()),
                        (Some(v), None) => eq_consts.entry(r.clone()).or_default().push(v.clone()),
                        _ => {}
                    }
                }
            }
        }
        if !falsified {
            for (_, consts) in eq_consts {
                if consts.windows(2).any(|w| w[0] != w[1]) {
                    falsified = true;
                    break;
                }
            }
        }

        // Numeric range conflicts: collect (op, constant) constraints per
        // term and check pairwise satisfiability (x > 100 ∧ x < 7 → ⊥).
        if !falsified {
            let mut ranges: HashMap<Term, Vec<(String, f64)>> = HashMap::new();
            for c in &kept {
                if let Some((op, [l, r])) = c.as_app() {
                    if outcomes(op).is_none() {
                        continue;
                    }
                    let entry = match (l.as_const(), r.as_const()) {
                        (None, Some(v)) => v.as_f64().ok().map(|n| (l.clone(), op.to_owned(), n)),
                        (Some(v), None) => v
                            .as_f64()
                            .ok()
                            .map(|n| (r.clone(), flip_op(op).to_owned(), n)),
                        _ => None,
                    };
                    if let Some((t, op, n)) = entry {
                        ranges.entry(t).or_default().push((op, n));
                    }
                }
            }
            'scan: for (_, constraints) in ranges {
                for i in 0..constraints.len() {
                    for j in (i + 1)..constraints.len() {
                        if !range_pair_satisfiable(&constraints[i], &constraints[j]) {
                            falsified = true;
                            break 'scan;
                        }
                    }
                }
            }
        }
    }

    let simplified = if falsified {
        Term::bool(false)
    } else {
        build_and(kept)
    };
    if flatten_and(&simplified) == original {
        return Ok(false);
    }
    bind_output(&args[1], simplified, binds, "SIMPLIFYQ")
}

/// Mirror a comparison operator (`c op t` ⇔ `t op' c`).
fn flip_op(op: &str) -> &str {
    match op {
        "<" => ">",
        ">" => "<",
        "<=" => ">=",
        ">=" => "<=",
        other => other,
    }
}

/// Can some number satisfy both `x op1 c1` and `x op2 c2`?
fn range_pair_satisfiable(a: &(String, f64), b: &(String, f64)) -> bool {
    let (op1, c1) = (a.0.as_str(), a.1);
    let (op2, c2) = (b.0.as_str(), b.1);
    let holds = |x: f64, op: &str, c: f64| match op {
        "<" => x < c,
        ">" => x > c,
        "<=" => x <= c,
        ">=" => x >= c,
        "=" => x == c,
        "<>" => x != c,
        _ => true,
    };
    // Candidate witnesses: the constants themselves, points just beside
    // them, a midpoint, and far sentinels.
    let eps = 0.5 * (c1 - c2).abs().max(1.0);
    let candidates = [
        c1,
        c2,
        c1 - eps,
        c1 + eps,
        c2 - eps,
        c2 + eps,
        (c1 + c2) / 2.0,
        f64::MIN / 2.0,
        f64::MAX / 2.0,
    ];
    candidates
        .iter()
        .any(|&x| holds(x, op1, c1) && holds(x, op2, c2))
}

#[cfg(test)]
mod tests {
    use super::*;
    use eds_rewrite::BasicEnv;

    fn call(name: &str, args: Vec<Term>, binds: &mut Bindings) -> RwResult<bool> {
        let mut reg = MethodRegistry::with_builtins();
        register_core_methods(&mut reg);
        let env = BasicEnv::new();
        reg.call(name, &args, binds, &env)
    }

    #[test]
    fn flatten_and_build_roundtrip() {
        let f = Term::app(
            "AND",
            vec![
                Term::app("AND", vec![Term::atom("A"), Term::atom("B")]),
                Term::atom("C"),
            ],
        );
        let cs = flatten_and(&f);
        assert_eq!(cs.len(), 3);
        assert_eq!(flatten_and(&build_and(cs.clone())), cs);
        assert_eq!(build_and(vec![]), Term::bool(true));
    }

    #[test]
    fn substitute_remaps_through_merge() {
        // Outer inputs were (X, SEARCH(z=[R, S], g, b), Y): k=1, m=2.
        // b = (2.1, 1.3): inner output attr 1 is 2.1 (rel shifts +1 -> 3.1).
        let mut binds = Bindings::new();
        binds.bind_seq("xs", vec![Term::atom("X")]);
        binds.bind("z", Term::list(vec![Term::atom("R"), Term::atom("S")]));
        binds.bind("b", Term::list(vec![Term::attr(2, 1), Term::attr(1, 3)]));
        let t = Term::app(
            "AND",
            vec![
                Term::app("=", vec![Term::attr(1, 1), Term::attr(2, 1)]),
                Term::app(">", vec![Term::attr(3, 2), Term::int(5)]),
            ],
        );
        binds.bind("t", t);
        let ok = call(
            "SUBSTITUTE",
            vec![
                Term::var("t"),
                Term::seq("xs"),
                Term::var("z"),
                Term::var("b"),
                Term::var("out"),
            ],
            &mut binds,
        )
        .unwrap();
        assert!(ok);
        // 1.1 unchanged; 2.1 (inner output attr 1) -> b[0]=2.1 shifted +1 = 3.1;
        // 3.2 (after the search) -> rel 3 + (2-1) = 4.2
        assert_eq!(
            binds.get("out").unwrap().to_string(),
            "((1.1 = 3.1) AND (4.2 > 5))"
        );
    }

    #[test]
    fn substitute_rejects_out_of_range_projection() {
        let mut binds = Bindings::new();
        binds.bind_seq("xs", vec![]);
        binds.bind("z", Term::list(vec![Term::atom("R")]));
        binds.bind("b", Term::list(vec![Term::attr(1, 1)]));
        binds.bind("t", Term::app("=", vec![Term::attr(1, 9), Term::int(0)]));
        let ok = call(
            "SUBSTITUTE",
            vec![
                Term::var("t"),
                Term::seq("xs"),
                Term::var("z"),
                Term::var("b"),
                Term::var("out"),
            ],
            &mut binds,
        )
        .unwrap();
        assert!(!ok);
    }

    #[test]
    fn shift_renumbers() {
        let mut binds = Bindings::new();
        binds.bind_seq("xs", vec![Term::atom("A"), Term::atom("B")]);
        binds.bind(
            "g",
            Term::app("=", vec![Term::attr(1, 2), Term::attr(2, 1)]),
        );
        let ok = call(
            "SHIFT",
            vec![Term::var("g"), Term::seq("xs"), Term::var("out")],
            &mut binds,
        )
        .unwrap();
        assert!(ok);
        assert_eq!(binds.get("out").unwrap().to_string(), "(3.2 = 4.1)");
    }

    #[test]
    fn splitnest_partitions_conjuncts() {
        // Nest at position 2 (x* = [A]); group positions (1, 2) of the
        // nest input; conjunct on 2.1 pushable, on 2.3 (collection) not,
        // on 1.1 (other relation) not.
        let mut binds = Bindings::new();
        binds.bind_seq("xs", vec![Term::atom("A")]);
        binds.bind("a", Term::list(vec![Term::int(3)]));
        binds.bind("b", Term::list(vec![Term::int(1), Term::int(2)]));
        let f = build_and(vec![
            Term::app("=", vec![Term::attr(2, 1), Term::int(7)]),
            Term::app("MEMBER", vec![Term::int(1), Term::attr(2, 3)]),
            Term::app("=", vec![Term::attr(1, 1), Term::attr(2, 2)]),
        ]);
        binds.bind("f", f);
        let ok = call(
            "SPLITNEST",
            vec![
                Term::var("f"),
                Term::seq("xs"),
                Term::var("a"),
                Term::var("b"),
                Term::var("fi"),
                Term::var("fo"),
            ],
            &mut binds,
        )
        .unwrap();
        assert!(ok);
        // Pushed: 2.1 = 7 with group[0] = 1 -> 1.1 = 7.
        assert_eq!(binds.get("fi").unwrap().to_string(), "(1.1 = 7)");
        let fo = binds.get("fo").unwrap().to_string();
        assert!(fo.contains("MEMBER") && fo.contains("(1.1 = 2.2)"), "{fo}");
    }

    #[test]
    fn splitnest_fails_without_pushable_conjunct() {
        let mut binds = Bindings::new();
        binds.bind_seq("xs", vec![]);
        binds.bind("a", Term::list(vec![Term::int(2)]));
        binds.bind("b", Term::list(vec![Term::int(1)]));
        binds.bind(
            "f",
            Term::app("MEMBER", vec![Term::int(1), Term::attr(1, 2)]),
        );
        let ok = call(
            "SPLITNEST",
            vec![
                Term::var("f"),
                Term::seq("xs"),
                Term::var("a"),
                Term::var("b"),
                Term::var("fi"),
                Term::var("fo"),
            ],
            &mut binds,
        )
        .unwrap();
        assert!(!ok);
    }

    #[test]
    fn transitivity_derives_equality() {
        let mut binds = Bindings::new();
        let f = build_and(vec![
            Term::app("=", vec![Term::attr(1, 1), Term::attr(2, 1)]),
            Term::app("=", vec![Term::attr(2, 1), Term::attr(3, 1)]),
        ]);
        binds.bind("f", f);
        let ok = call(
            "TRANSITIVITY",
            vec![Term::var("f"), Term::var("out")],
            &mut binds,
        )
        .unwrap();
        assert!(ok);
        let out = binds.get("out").unwrap().to_string();
        assert!(out.contains("(1.1 = 3.1)"), "{out}");
        // Re-running on the closure derives nothing new.
        let mut binds2 = Bindings::new();
        binds2.bind("f", binds.get("out").unwrap().clone());
        let again = call(
            "TRANSITIVITY",
            vec![Term::var("f"), Term::var("out")],
            &mut binds2,
        )
        .unwrap();
        assert!(!again);
    }

    #[test]
    fn eqsubst_propagates_constants() {
        let mut binds = Bindings::new();
        let f = build_and(vec![
            Term::app("=", vec![Term::attr(1, 1), Term::int(5)]),
            Term::app(">", vec![Term::attr(1, 1), Term::attr(2, 2)]),
        ]);
        binds.bind("f", f);
        let ok = call(
            "EQSUBST",
            vec![Term::var("f"), Term::var("out")],
            &mut binds,
        )
        .unwrap();
        assert!(ok);
        let out = binds.get("out").unwrap().to_string();
        assert!(out.contains("(5 > 2.2)"), "{out}");
    }

    #[test]
    fn simplifyq_detects_contradiction() {
        let mut binds = Bindings::new();
        // x > y AND x <= y (Figure 12).
        let f = build_and(vec![
            Term::app(">", vec![Term::attr(1, 1), Term::attr(1, 2)]),
            Term::app("<=", vec![Term::attr(1, 1), Term::attr(1, 2)]),
        ]);
        binds.bind("f", f);
        let ok = call(
            "SIMPLIFYQ",
            vec![Term::var("f"), Term::var("out")],
            &mut binds,
        )
        .unwrap();
        assert!(ok);
        assert_eq!(binds.get("out").unwrap(), &Term::bool(false));
    }

    #[test]
    fn simplifyq_mirrored_contradiction() {
        // x > y AND y >= x, written with swapped operands.
        let mut binds = Bindings::new();
        let f = build_and(vec![
            Term::app(">", vec![Term::attr(1, 1), Term::attr(1, 2)]),
            Term::app(">=", vec![Term::attr(1, 2), Term::attr(1, 1)]),
        ]);
        binds.bind("f", f);
        let ok = call(
            "SIMPLIFYQ",
            vec![Term::var("f"), Term::var("out")],
            &mut binds,
        )
        .unwrap();
        assert!(ok);
        assert_eq!(binds.get("out").unwrap(), &Term::bool(false));
    }

    #[test]
    fn simplifyq_conflicting_constant_equalities() {
        let mut binds = Bindings::new();
        let f = build_and(vec![
            Term::app("=", vec![Term::attr(1, 1), Term::str("a")]),
            Term::app("=", vec![Term::attr(1, 1), Term::str("b")]),
        ]);
        binds.bind("f", f);
        let ok = call(
            "SIMPLIFYQ",
            vec![Term::var("f"), Term::var("out")],
            &mut binds,
        )
        .unwrap();
        assert!(ok);
        assert_eq!(binds.get("out").unwrap(), &Term::bool(false));
    }

    #[test]
    fn simplifyq_drops_true_and_duplicates() {
        let mut binds = Bindings::new();
        let c = Term::app("=", vec![Term::attr(1, 1), Term::int(1)]);
        let f = build_and(vec![Term::bool(true), c.clone(), c.clone()]);
        binds.bind("f", f);
        let ok = call(
            "SIMPLIFYQ",
            vec![Term::var("f"), Term::var("out")],
            &mut binds,
        )
        .unwrap();
        assert!(ok);
        assert_eq!(binds.get("out").unwrap(), &c);
    }

    #[test]
    fn simplifyq_noop_on_clean_input() {
        let mut binds = Bindings::new();
        binds.bind("f", Term::app("=", vec![Term::attr(1, 1), Term::int(1)]));
        let ok = call(
            "SIMPLIFYQ",
            vec![Term::var("f"), Term::var("out")],
            &mut binds,
        )
        .unwrap();
        assert!(!ok);
    }

    #[test]
    fn refer_checks_attribute_usage() {
        let mut binds = Bindings::new();
        binds.bind("a", Term::list(vec![Term::int(2), Term::int(3)]));
        binds.bind("f", Term::app("=", vec![Term::attr(1, 2), Term::int(0)]));
        assert!(call("REFER", vec![Term::var("a"), Term::var("f")], &mut binds).unwrap());
        binds.bind("f", Term::app("=", vec![Term::attr(1, 5), Term::int(0)]));
        assert!(!call("REFER", vec![Term::var("a"), Term::var("f")], &mut binds).unwrap());
    }

    #[test]
    fn adornment_computes_signature() {
        let mut binds = Bindings::new();
        binds.bind_seq("xs", vec![]);
        binds.bind("r", Term::atom("BT"));
        binds.bind(
            "f",
            Term::app("=", vec![Term::attr(1, 2), Term::str("Quinn")]),
        );
        let ok = call(
            "ADORNMENT",
            vec![
                Term::seq("xs"),
                Term::var("r"),
                Term::var("f"),
                Term::var("s"),
            ],
            &mut binds,
        )
        .unwrap();
        assert!(ok);
        // BasicEnv knows no arity; signature extends to the max bound attr.
        assert_eq!(binds.get("s").unwrap(), &Term::str("fb"));
    }

    #[test]
    fn adornment_fails_without_bound_attribute() {
        let mut binds = Bindings::new();
        binds.bind_seq("xs", vec![]);
        binds.bind("r", Term::atom("BT"));
        binds.bind(
            "f",
            Term::app("=", vec![Term::attr(1, 2), Term::attr(2, 1)]),
        );
        let ok = call(
            "ADORNMENT",
            vec![
                Term::seq("xs"),
                Term::var("r"),
                Term::var("f"),
                Term::var("s"),
            ],
            &mut binds,
        )
        .unwrap();
        assert!(!ok);
    }
}
