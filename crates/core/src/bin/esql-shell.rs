//! An interactive ESQL shell over the rule-based rewriter.
//!
//! ```sh
//! cargo run --bin esql-shell
//! ```
//!
//! Statements end with `;`. Meta-commands start with `.`:
//!
//! ```text
//! .help                 this message
//! .explain <query ;>    show canonical plan, rewritten plan and trace
//! .rules                list the knowledge base (rules per block)
//! .rule <rule ;>        add a rule in the Figure-6 rule language
//! .constraint <rule ;>  declare an integrity constraint
//! .limit <block> <n|INF>   change a block's application limit
//! .lint                 statically analyze the knowledge base
//! .verify [seed]        semantically verify it (prover + differential fuzzer)
//! .level [none|simple|full]  show or set the optimization level
//! .stats                plan-cache, exploration and executor counters
//! .prepare <name> <query ;>   prepare a `?`-parameterized statement
//! .exec <name> [value ...]    execute it with bind values
//! .tables               list tables and views
//! .quit                 exit
//! ```

use std::collections::HashMap;
use std::io::{BufRead, Write};

use eds_adt::Value;
use eds_core::{Dbms, Executed, PreparedStmt};
use eds_rewrite::Limit;

fn main() {
    let mut dbms = Dbms::new().expect("built-in rules must load");
    let mut stmts: HashMap<String, PreparedStmt> = HashMap::new();
    println!("EDS rule-based query rewriter — ESQL shell (.help for help)");

    let stdin = std::io::stdin();
    let mut buffer = String::new();
    loop {
        if buffer.is_empty() {
            print!("esql> ");
        } else {
            print!("  ... ");
        }
        std::io::stdout().flush().ok();

        let mut line = String::new();
        match stdin.lock().read_line(&mut line) {
            Ok(0) => break, // EOF
            Ok(_) => {}
            Err(e) => {
                eprintln!("read error: {e}");
                break;
            }
        }
        let trimmed = line.trim();

        if buffer.is_empty() && trimmed.starts_with('.') {
            if !meta_command(&mut dbms, &mut stmts, trimmed) {
                break;
            }
            continue;
        }

        buffer.push_str(&line);
        if !trimmed.ends_with(';') {
            continue;
        }
        let stmt = std::mem::take(&mut buffer);
        run_statement(&mut dbms, &stmt);
    }
}

fn run_statement(dbms: &mut Dbms, src: &str) {
    match dbms.execute(src) {
        Ok(results) => {
            for r in results {
                match r {
                    Executed::Ddl => println!("ok."),
                    Executed::Inserted(n) => println!("{n} row(s) inserted."),
                    Executed::Rows(rel) => print_relation(&rel),
                }
            }
        }
        Err(e) => eprintln!("error: {e}"),
    }
}

fn print_relation(rel: &eds_engine::Relation) {
    let names = rel.schema.names();
    println!("{}", names.join(" | "));
    println!(
        "{}",
        names
            .iter()
            .map(|n| "-".repeat(n.len()))
            .collect::<Vec<_>>()
            .join("-+-")
    );
    for row in &rel.rows {
        let cells: Vec<String> = row.iter().map(ToString::to_string).collect();
        println!("{}", cells.join(" | "));
    }
    println!("({} row(s))", rel.len());
}

/// Parse the bind values of `.exec`: integers, reals, NULL, TRUE/FALSE,
/// and `'single quoted'` strings (quotes optional for bare words).
fn parse_binds(src: &str) -> Result<Vec<Value>, String> {
    let mut out = Vec::new();
    let mut chars = src.chars().peekable();
    while let Some(&c) = chars.peek() {
        if c.is_whitespace() {
            chars.next();
            continue;
        }
        if c == '\'' {
            chars.next();
            let mut s = String::new();
            loop {
                match chars.next() {
                    Some('\'') if chars.peek() == Some(&'\'') => {
                        chars.next();
                        s.push('\'');
                    }
                    Some('\'') => break,
                    Some(ch) => s.push(ch),
                    None => return Err("unterminated string".into()),
                }
            }
            out.push(Value::str(s));
            continue;
        }
        let mut tok = String::new();
        while let Some(&ch) = chars.peek() {
            if ch.is_whitespace() {
                break;
            }
            tok.push(ch);
            chars.next();
        }
        let v = if tok.eq_ignore_ascii_case("NULL") {
            Value::Null
        } else if tok.eq_ignore_ascii_case("TRUE") {
            Value::Bool(true)
        } else if tok.eq_ignore_ascii_case("FALSE") {
            Value::Bool(false)
        } else if let Ok(i) = tok.parse::<i64>() {
            Value::Int(i)
        } else if let Ok(r) = tok.parse::<f64>() {
            Value::real(r)
        } else {
            Value::str(tok)
        };
        out.push(v);
    }
    Ok(out)
}

/// Returns false to quit.
fn meta_command(dbms: &mut Dbms, stmts: &mut HashMap<String, PreparedStmt>, cmd: &str) -> bool {
    let (head, rest) = match cmd.split_once(char::is_whitespace) {
        Some((h, r)) => (h, r.trim()),
        None => (cmd, ""),
    };
    match head {
        ".quit" | ".exit" => {
            // Join the morsel workers so the process exits cleanly.
            eds_core::engine::shutdown_pool();
            return false;
        }
        ".help" => println!(
            ".help / .quit / .tables / .rules\n\
             .explain <query ;>      canonical + rewritten plan + trace\n\
             .rule <rule ;>          add an optimization rule\n\
             .constraint <rule ;>    declare an integrity constraint\n\
             .limit <block> <n|INF>  change a block's limit\n\
             .lint                   statically analyze the knowledge base\n\
             .verify [seed]          semantically verify it (prover + fuzzer)\n\
             .discover [seed]        search for new prover-certified rules\n\
             .level [none|simple|full]  show or set the optimization level\n\
             .stats                  plan-cache, exploration and executor counters\n\
             .prepare <name> <query ;>   prepare a ?-parameterized statement\n\
             .exec <name> [value ...]    execute it with bind values"
        ),
        ".tables" => {
            println!("tables: {}", dbms.db.catalog.table_names().join(", "));
            println!("views:  {}", dbms.db.catalog.view_names().join(", "));
        }
        ".rules" => {
            for block in dbms.rewriter.strategy().blocks() {
                println!(
                    "block {} (limit {:?}): {}",
                    block.name,
                    block.limit,
                    block.rules.join(", ")
                );
            }
            if let Some(seq) = &dbms.rewriter.strategy().sequence {
                println!("seq(({}), {})", seq.blocks.join(", "), seq.passes);
            }
        }
        ".explain" => match dbms.explain(rest) {
            Ok(text) => println!("{text}"),
            Err(e) => eprintln!("error: {e}"),
        },
        ".rule" => match dbms.add_rule_source(rest) {
            Ok(n) => println!("{n} item(s) added."),
            Err(e) => eprintln!("error: {e}"),
        },
        ".constraint" => match dbms.add_constraint_source(rest) {
            Ok(n) => println!("{n} constraint(s) declared."),
            Err(e) => eprintln!("error: {e}"),
        },
        ".stats" => {
            let pc = dbms.rewriter.plan_cache_stats();
            println!(
                "plan cache: {} hit(s), {} miss(es), {} eviction(s), {} invalidation(s)",
                pc.hits, pc.misses, pc.evictions, pc.invalidations
            );
            println!(
                "shape tier: {} hit(s), {} miss(es) ({} prepared statement shape(s) cached)",
                pc.shape_hits,
                pc.shape_misses,
                dbms.rewriter.shape_cache_len()
            );
            let ex = dbms.rewriter.explore_stats();
            println!(
                "explore:    {} candidate(s) scored, {} check(s) spent, \
                 {} budget stop(s), {} win(s)",
                ex.candidates, ex.checks, ex.budget_stops, ex.wins
            );
            let ps = dbms.parallel_stats();
            println!(
                "executor:   {} parallel run(s), {} morsel(s) dispatched, \
                 {} cursor retries, last run used {} worker(s)",
                ps.parallel_runs, ps.morsels_dispatched, ps.cursor_retries, ps.last_workers
            );
        }
        ".prepare" => match rest.split_once(char::is_whitespace) {
            Some((name, sql)) if !sql.trim().is_empty() => match dbms.prepare_stmt(sql.trim()) {
                Ok(stmt) => {
                    println!("prepared '{name}' ({} parameter(s)).", stmt.param_count());
                    stmts.insert(name.to_string(), stmt);
                }
                Err(e) => eprintln!("error: {e}"),
            },
            _ => eprintln!("usage: .prepare <name> <query ;>"),
        },
        ".exec" => {
            let (name, vals) = match rest.split_once(char::is_whitespace) {
                Some((n, v)) => (n, v),
                None => (rest, ""),
            };
            match stmts.get(name) {
                None if name.is_empty() => eprintln!("usage: .exec <name> [value ...]"),
                None => eprintln!("error: no prepared statement '{name}' (.prepare first)"),
                Some(stmt) => match parse_binds(vals) {
                    Err(e) => eprintln!("error: {e}"),
                    Ok(binds) => match stmt.execute(dbms, &binds) {
                        Ok(rel) => print_relation(&rel),
                        Err(e) => eprintln!("error: {e}"),
                    },
                },
            }
        }
        ".lint" => {
            let diagnostics = dbms.lint();
            for d in &diagnostics {
                println!("{d}");
                for f in &d.suggestions {
                    println!("  fix: {}", f.description);
                }
            }
            let errors = diagnostics.iter().filter(|d| d.is_error()).count();
            println!(
                "{} error(s), {} warning(s)",
                errors,
                diagnostics.len() - errors
            );
        }
        ".verify" => {
            let opts = if rest.is_empty() {
                eds_core::VerifyOptions::default()
            } else {
                match rest.parse::<u64>() {
                    Ok(seed) => eds_core::VerifyOptions {
                        seed,
                        ..eds_core::VerifyOptions::default()
                    },
                    Err(_) => {
                        eprintln!("usage: .verify [seed]");
                        return true;
                    }
                }
            };
            let report = dbms.verify_with(&opts);
            for d in &report.diagnostics {
                println!("{d}");
            }
            println!("{}", report.summary());
        }
        ".discover" => {
            let opts = if rest.is_empty() {
                eds_core::DiscoverOptions::default()
            } else {
                match rest.parse::<u64>() {
                    Ok(seed) => eds_core::DiscoverOptions {
                        seed,
                        ..eds_core::DiscoverOptions::default()
                    },
                    Err(_) => {
                        eprintln!("usage: .discover [seed]");
                        return true;
                    }
                }
            };
            let discovery = dbms.discover(&opts);
            println!("funnel: {}", discovery.funnel);
            for d in &discovery.rules {
                println!(
                    "{} ;   // cost {:.1} -> {:.1}",
                    d.rule, d.lhs_cost, d.rhs_cost
                );
            }
            println!(
                "{} rule(s) discovered (add with .rule, or run eds-discover for a file).",
                discovery.rules.len()
            );
        }
        ".level" => {
            if rest.is_empty() {
                println!("opt level: {}", dbms.opt_level());
            } else {
                match eds_core::OptLevel::parse(rest) {
                    Some(level) => {
                        dbms.set_opt_level(level);
                        println!("opt level: {level}");
                    }
                    None => eprintln!("usage: .level [none|simple|full]"),
                }
            }
        }
        ".limit" => {
            let mut parts = rest.split_whitespace();
            match (parts.next(), parts.next()) {
                (Some(block), Some(value)) => {
                    let limit = if value.eq_ignore_ascii_case("INF") {
                        Limit::Infinite
                    } else {
                        match value.parse::<u64>() {
                            Ok(n) => Limit::Finite(n),
                            Err(_) => {
                                eprintln!("error: limit must be a number or INF");
                                return true;
                            }
                        }
                    };
                    match dbms.rewriter.strategy_mut().set_limit(block, limit) {
                        Ok(()) => println!("ok."),
                        Err(e) => eprintln!("error: {e}"),
                    }
                }
                _ => eprintln!("usage: .limit <block> <n|INF>"),
            }
        }
        other => eprintln!("unknown command {other} (.help for help)"),
    }
    true
}
