//! `eds-discover` — prover-gated discovery of rewrite rules.
//!
//! ```text
//! eds-discover [--seed N] [--budget N] [--max-rules N] [--max-size N]
//!              [--fragment bool|cmp|full] [--format human|json] [--out FILE]
//! ```
//!
//! Enumerates candidate (LHS, RHS) rewrite pairs over a bounded term
//! fragment, gates them through the bounded equivalence prover and the
//! seeded differential fuzzer, keeps only strictly cost-decreasing
//! survivors under the LERA cost model, drops candidates already
//! derivable from the built-in knowledge base, and emits the rest as a
//! loadable `.rules` source.
//!
//! The survival funnel prints to stderr; the rules document goes to
//! stdout (or `--out FILE`). `--format json` replaces the `.rules` text
//! with a machine document carrying the options echo, the funnel, and
//! per-rule provenance (costs, prover valuations, guardedness).
//!
//! Exit status:
//! * `0` — run completed (zero rules discovered is still a completed
//!   run: the funnel says why);
//! * `2` — usage or I/O failure.

use std::process::ExitCode;

use eds_core::{Dbms, DiscoverOptions, Discovery, Fragment};

const USAGE: &str = "\
usage: eds-discover [--seed N] [--budget N] [--max-rules N] [--max-size N]
                    [--fragment bool|cmp|full] [--format human|json] [--out FILE]
  --seed N:      exploration-order seed (decimal or 0x hex; soundness
                 never depends on it — every rule is prover-gated)
  --budget N:    max candidate pairs admitted to the gate loop
  --max-rules N: stop after this many accepted rules
  --max-size N:  max LHS size in term nodes
  --fragment F:  bool (connectives), cmp (+comparisons), full (+arith)
  --format F:    human (.rules text, default) or json on stdout
  --out FILE:    write the document to FILE instead of stdout
exit codes: 0 = run completed, 2 = usage or I/O error";

#[derive(Clone, Copy, PartialEq)]
enum Format {
    Human,
    Json,
}

fn parse_seed(s: &str) -> Option<u64> {
    if let Some(hex) = s.strip_prefix("0x").or_else(|| s.strip_prefix("0X")) {
        u64::from_str_radix(hex, 16).ok()
    } else {
        s.parse().ok()
    }
}

fn main() -> ExitCode {
    let mut opts = DiscoverOptions::default();
    let mut format = Format::Human;
    let mut out: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--seed" => match args.next().as_deref().and_then(parse_seed) {
                Some(s) => opts.seed = s,
                None => return usage_error("--seed expects an unsigned integer"),
            },
            "--budget" => match args.next().as_deref().and_then(|s| s.parse().ok()) {
                Some(n) => opts.budget = n,
                None => return usage_error("--budget expects a count"),
            },
            "--max-rules" => match args.next().as_deref().and_then(|s| s.parse().ok()) {
                Some(n) => opts.max_rules = n,
                None => return usage_error("--max-rules expects a count"),
            },
            "--max-size" => match args.next().as_deref().and_then(|s| s.parse().ok()) {
                Some(n) => opts.max_term_size = n,
                None => return usage_error("--max-size expects a count"),
            },
            "--fragment" => match args.next().as_deref().and_then(Fragment::parse) {
                Some(f) => opts.fragment = f,
                None => return usage_error("--fragment expects bool|cmp|full"),
            },
            "--format" => match args.next().as_deref() {
                Some("human") => format = Format::Human,
                Some("json") => format = Format::Json,
                other => {
                    eprintln!("eds-discover: --format expects human|json, got {other:?}");
                    return ExitCode::from(2);
                }
            },
            "--out" => match args.next() {
                Some(path) => out = Some(path),
                None => return usage_error("--out expects a path"),
            },
            "--help" | "-h" => {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("eds-discover: unexpected argument {other}\n{USAGE}");
                return ExitCode::from(2);
            }
        }
    }

    let dbms = match Dbms::new() {
        Ok(dbms) => dbms,
        Err(e) => {
            eprintln!("eds-discover: failed to load built-in rules: {e}");
            return ExitCode::from(2);
        }
    };
    let discovery = dbms.discover(&opts);
    eprintln!("eds-discover: funnel: {}", discovery.funnel);
    eprintln!(
        "eds-discover: {} rule(s) discovered (seed {:#x}, fragment {}, budget {})",
        discovery.rules.len(),
        discovery.seed,
        discovery.fragment,
        discovery.budget
    );

    let document = match format {
        Format::Human => discovery.render(),
        Format::Json => render_json(&discovery),
    };
    match &out {
        None => {
            print!("{document}");
            ExitCode::SUCCESS
        }
        Some(path) => match std::fs::write(path, &document) {
            Ok(()) => ExitCode::SUCCESS,
            Err(e) => {
                eprintln!("eds-discover: {path}: {e}");
                ExitCode::from(2)
            }
        },
    }
}

fn usage_error(msg: &str) -> ExitCode {
    eprintln!("eds-discover: {msg}\n{USAGE}");
    ExitCode::from(2)
}

/// Minimal JSON string escaping (quotes, backslashes, control chars).
fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn render_json(d: &Discovery) -> String {
    let f = &d.funnel;
    let funnel = format!(
        "{{\"terms_enumerated\":{},\"symmetry_pruned\":{},\"terms_truncated\":{},\
         \"buckets\":{},\"candidates\":{},\"budget_truncated\":{},\
         \"renaming_pruned\":{},\"proved\":{},\"guarded\":{},\"refuted\":{},\
         \"conditional\":{},\"unsupported\":{},\"cost_rejected\":{},\
         \"redundant\":{},\"fuzz_rejected\":{},\"emitted\":{}}}",
        f.terms_enumerated,
        f.symmetry_pruned,
        f.terms_truncated,
        f.buckets,
        f.candidates,
        f.budget_truncated,
        f.renaming_pruned,
        f.proved,
        f.guarded,
        f.refuted,
        f.conditional,
        f.unsupported,
        f.cost_rejected,
        f.redundant,
        f.fuzz_rejected,
        f.emitted
    );
    let rules: Vec<String> = d
        .rules
        .iter()
        .map(|r| {
            format!(
                "{{\"name\":\"{}\",\"rule\":\"{}\",\"key\":\"{}\",\
                 \"valuations\":{},\"lhs_cost\":{},\"rhs_cost\":{},\"guarded\":{}}}",
                esc(&r.rule.name),
                esc(&r.rule.to_string()),
                esc(&r.key),
                r.valuations,
                r.lhs_cost,
                r.rhs_cost,
                r.guarded
            )
        })
        .collect();
    format!(
        "{{\"seed\":{},\"fragment\":\"{}\",\"budget\":{},\
         \"funnel\":{},\"rules\":[{}]}}\n",
        d.seed,
        d.fragment,
        d.budget,
        funnel,
        rules.join(",")
    )
}
