//! `eds-lint` — static analysis of rewrite-rule knowledge bases.
//!
//! ```text
//! eds-lint [--deny] [FILE.rules ...]
//! ```
//!
//! With no files, lints the built-in knowledge base (every rule plus
//! the block/seq strategy). With files, loads the built-ins silently
//! and then lints each file *staged against* the state so far — later
//! files see earlier files' rules and blocks, matching how a shell
//! session would register them.
//!
//! Exit status: nonzero when `--deny` is set and any error-severity
//! diagnostic fired, or when a file cannot be read or parsed. Without
//! `--deny` the tool only reports (CI uses `--deny`).

use std::process::ExitCode;

use eds_core::{LintPolicy, QueryRewriter};
use eds_rewrite::{Diagnostic, Severity};

fn main() -> ExitCode {
    let mut deny = false;
    let mut files = Vec::new();
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--deny" => deny = true,
            "--help" | "-h" => {
                println!("usage: eds-lint [--deny] [FILE.rules ...]");
                println!("  no files: lint the built-in knowledge base");
                println!("  --deny:   exit nonzero on any error-severity diagnostic");
                return ExitCode::SUCCESS;
            }
            other if other.starts_with('-') => {
                eprintln!("eds-lint: unknown flag {other}");
                return ExitCode::FAILURE;
            }
            path => files.push(path.to_owned()),
        }
    }

    let mut rw = match QueryRewriter::with_default_rules() {
        Ok(rw) => rw,
        Err(e) => {
            eprintln!("eds-lint: failed to load built-in rules: {e}");
            return ExitCode::FAILURE;
        }
    };

    let mut diagnostics: Vec<Diagnostic> = Vec::new();
    if files.is_empty() {
        diagnostics.extend(rw.lint(None));
    } else {
        for path in &files {
            let src = match std::fs::read_to_string(path) {
                Ok(src) => src,
                Err(e) => {
                    eprintln!("eds-lint: {path}: {e}");
                    return ExitCode::FAILURE;
                }
            };
            match rw.lint_source(&src, None) {
                Ok(found) => {
                    for d in &found {
                        println!("{path}: {d}");
                    }
                    diagnostics.extend(found);
                }
                Err(e) => {
                    eprintln!("eds-lint: {path}: {e}");
                    return ExitCode::FAILURE;
                }
            }
            // Commit so later files resolve this file's definitions.
            if let Err(e) = rw.add_source_checked(&src, LintPolicy::Off, None) {
                eprintln!("eds-lint: {path}: {e}");
                return ExitCode::FAILURE;
            }
        }
    }

    if files.is_empty() {
        for d in &diagnostics {
            println!("{d}");
        }
    }
    let errors = diagnostics.iter().filter(|d| d.is_error()).count();
    let warnings = diagnostics
        .iter()
        .filter(|d| d.severity == Severity::Warning)
        .count();
    println!("eds-lint: {errors} error(s), {warnings} warning(s)");

    if deny && errors > 0 {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
