//! `eds-lint` — static analysis of rewrite-rule knowledge bases.
//!
//! ```text
//! eds-lint [--deny] [--fix [--check]] [--verify [--seed N] [--seeds-file F]]
//!          [--format human|json|sarif] [FILE.rules ...]
//! ```
//!
//! With no files, lints the built-in knowledge base (every rule plus
//! the block/seq strategy). With files, loads the built-ins silently
//! and then lints each file *staged against* the state so far — later
//! files see earlier files' rules and blocks, matching how a shell
//! session would register them.
//!
//! `--fix` applies the machine-applicable suggestions carried by the
//! diagnostics, re-lints, and repeats until a pass changes nothing, then
//! writes the file back. With `--check` nothing is written: the tool
//! verifies that fixing converges and is idempotent (the contract CI
//! enforces over the example rules).
//!
//! `--verify` adds the semantic soundness tier on top of the static
//! passes: every rule in scope (the built-in KB, or the given files'
//! rules) goes through the bounded equivalence prover and the
//! differential fuzzer. Refutations surface as EDS030 errors whose
//! message carries the shrunk counterexample and the seed that replays
//! it; `--seed N` pins the fuzz stream and `--seeds-file F` replays one
//! full pass per seed listed in `F` (decimal or `0x` hex, `#` comments).
//!
//! `--format json` / `--format sarif` emit the diagnostics as a machine
//! document on stdout (SARIF 2.1.0 for code-scanning upload); the
//! human summary moves to stderr so the document stays parseable. Both
//! formats carry the suggested fixes — SARIF as `fix` objects with
//! `artifactChanges` whose replacement regions are resolved against the
//! linted source text.
//!
//! Exit status, independent of `--deny`'s *reporting* role:
//! * `0` — no error-severity findings (and, under `--deny`, no findings
//!   at all);
//! * `1` — at least one error-severity finding (including EDS030
//!   semantic refutations), or any finding under `--deny`;
//! * `2` — usage, I/O, or parse failure (including `--fix`
//!   non-convergence).

use std::collections::BTreeMap;
use std::process::ExitCode;

use eds_core::verify::DEFAULT_SEED;
use eds_core::{verify_rules, LintPolicy, QueryRewriter, VerifyOptions};
use eds_rewrite::{
    apply_fixes, parse_source, parse_source_spanned, Diagnostic, Severity, SourceItem,
};

const USAGE: &str = "\
usage: eds-lint [--deny] [--fix [--check]] [--verify [--seed N] [--seeds-file F]]
                [--format human|json|sarif] [FILE.rules ...]
  no files:        lint the built-in knowledge base
  --deny:          exit 1 on ANY finding (default: only error severity)
  --fix:           apply suggested fixes to the files until none remain
  --check:         with --fix, verify convergence/idempotence, write nothing
  --verify:        run the semantic tier (equivalence prover + differential
                   fuzzer) over the rules in scope
  --seed N:        base fuzz seed for --verify (decimal or 0x hex)
  --seeds-file F:  replay one --verify pass per seed listed in F
  --format FORMAT: human (default), json, or sarif (2.1.0) on stdout
exit codes: 0 = clean, 1 = findings (see --deny), 2 = usage or I/O error";

#[derive(Clone, Copy, PartialEq)]
enum Format {
    Human,
    Json,
    Sarif,
}

/// How many lint→fix rounds a file gets before the tool declares the
/// suggestions non-convergent (each round must strictly reduce the
/// fixable set, so real sources converge in two or three).
const MAX_FIX_ROUNDS: usize = 8;

fn parse_seed(s: &str) -> Option<u64> {
    if let Some(hex) = s.strip_prefix("0x").or_else(|| s.strip_prefix("0X")) {
        u64::from_str_radix(hex, 16).ok()
    } else {
        s.parse().ok()
    }
}

fn main() -> ExitCode {
    let mut deny = false;
    let mut fix = false;
    let mut check = false;
    let mut verify = false;
    let mut seed = DEFAULT_SEED;
    let mut seeds_file: Option<String> = None;
    let mut format = Format::Human;
    let mut files = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--deny" => deny = true,
            "--fix" => fix = true,
            "--check" => check = true,
            "--verify" => verify = true,
            "--seed" => match args.next().as_deref().and_then(parse_seed) {
                Some(s) => seed = s,
                None => {
                    eprintln!("eds-lint: --seed expects an unsigned integer");
                    return ExitCode::from(2);
                }
            },
            "--seeds-file" => match args.next() {
                Some(path) => seeds_file = Some(path),
                None => {
                    eprintln!("eds-lint: --seeds-file expects a path");
                    return ExitCode::from(2);
                }
            },
            "--format" => match args.next().as_deref() {
                Some("human") => format = Format::Human,
                Some("json") => format = Format::Json,
                Some("sarif") => format = Format::Sarif,
                other => {
                    eprintln!("eds-lint: --format expects human|json|sarif, got {other:?}");
                    return ExitCode::from(2);
                }
            },
            "--help" | "-h" => {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other if other.starts_with('-') => {
                eprintln!("eds-lint: unknown flag {other}\n{USAGE}");
                return ExitCode::from(2);
            }
            path => files.push(path.to_owned()),
        }
    }
    if check && !fix {
        eprintln!("eds-lint: --check only makes sense with --fix\n{USAGE}");
        return ExitCode::from(2);
    }
    if fix && files.is_empty() {
        eprintln!("eds-lint: --fix needs rule files (the built-in KB is read-only)");
        return ExitCode::from(2);
    }
    if (seeds_file.is_some() || seed != DEFAULT_SEED) && !verify {
        eprintln!("eds-lint: --seed/--seeds-file only make sense with --verify\n{USAGE}");
        return ExitCode::from(2);
    }
    let seeds: Vec<u64> = match &seeds_file {
        None => vec![seed],
        Some(path) => match std::fs::read_to_string(path) {
            Ok(text) => {
                let mut out = Vec::new();
                for line in text.lines() {
                    let line = line.split('#').next().unwrap_or("").trim();
                    if line.is_empty() {
                        continue;
                    }
                    match parse_seed(line) {
                        Some(s) => out.push(s),
                        None => {
                            eprintln!("eds-lint: {path}: bad seed line {line:?}");
                            return ExitCode::from(2);
                        }
                    }
                }
                if out.is_empty() {
                    eprintln!("eds-lint: {path}: no seeds");
                    return ExitCode::from(2);
                }
                out
            }
            Err(e) => {
                eprintln!("eds-lint: {path}: {e}");
                return ExitCode::from(2);
            }
        },
    };

    let mut rw = match QueryRewriter::with_default_rules() {
        Ok(rw) => rw,
        Err(e) => {
            eprintln!("eds-lint: failed to load built-in rules: {e}");
            return ExitCode::from(2);
        }
    };

    // (file, diagnostic) pairs; file is None for the built-in KB.
    let mut findings: Vec<(Option<String>, Diagnostic)> = Vec::new();
    // Linted source text per file, for span-resolving SARIF fixes.
    let mut sources: BTreeMap<String, String> = BTreeMap::new();
    if files.is_empty() {
        findings.extend(rw.lint(None).into_iter().map(|d| (None, d)));
        if verify {
            for (i, s) in seeds.iter().enumerate() {
                let opts = VerifyOptions {
                    seed: *s,
                    prove: i == 0, // the prover is deterministic; once is enough
                    ..VerifyOptions::default()
                };
                let report = rw.verify_with(&opts);
                findings.extend(report.diagnostics.into_iter().map(|d| (None, d)));
            }
        }
    } else {
        for path in &files {
            let src = match std::fs::read_to_string(path) {
                Ok(src) => src,
                Err(e) => {
                    eprintln!("eds-lint: {path}: {e}");
                    return ExitCode::from(2);
                }
            };
            let final_src = if fix {
                match fix_to_convergence(&rw, path, &src) {
                    Ok(fixed) => fixed,
                    Err(code) => return code,
                }
            } else {
                src.clone()
            };
            if fix && !check && final_src != src {
                if let Err(e) = std::fs::write(path, &final_src) {
                    eprintln!("eds-lint: {path}: {e}");
                    return ExitCode::from(2);
                }
                eprintln!("eds-lint: {path}: fixes applied");
            }
            match rw.lint_source(&final_src, None) {
                Ok(found) => findings.extend(found.into_iter().map(|d| (Some(path.clone()), d))),
                Err(e) => {
                    eprintln!("eds-lint: {path}: {e}");
                    return ExitCode::from(2);
                }
            }
            // Commit so later files resolve this file's definitions.
            if let Err(e) = rw.add_source_checked(&final_src, LintPolicy::Off, None) {
                eprintln!("eds-lint: {path}: {e}");
                return ExitCode::from(2);
            }
            if verify {
                // Verify exactly this file's rules (the built-ins are
                // covered by the no-file invocation CI runs separately).
                let rules: Vec<_> = match parse_source(&final_src) {
                    Ok(items) => items
                        .into_iter()
                        .filter_map(|item| match item {
                            SourceItem::Rule(r) => Some(r),
                            _ => None,
                        })
                        .collect(),
                    Err(e) => {
                        eprintln!("eds-lint: {path}: {e}");
                        return ExitCode::from(2);
                    }
                };
                for (i, s) in seeds.iter().enumerate() {
                    let opts = VerifyOptions {
                        seed: *s,
                        prove: i == 0,
                        ..VerifyOptions::default()
                    };
                    let report = verify_rules(rules.iter(), rw.methods(), &opts);
                    findings.extend(
                        report
                            .diagnostics
                            .into_iter()
                            .map(|d| (Some(path.clone()), d)),
                    );
                }
            }
            sources.insert(path.clone(), final_src);
        }
    }

    match format {
        Format::Human => {
            for (file, d) in &findings {
                match file {
                    Some(path) => println!("{path}: {d}"),
                    None => println!("{d}"),
                }
                for f in &d.suggestions {
                    println!("  fix: {}", f.description);
                }
            }
        }
        Format::Json => println!("{}", render_json(&findings)),
        Format::Sarif => println!("{}", render_sarif(&findings, &sources)),
    }

    let errors = findings.iter().filter(|(_, d)| d.is_error()).count();
    let warnings = findings
        .iter()
        .filter(|(_, d)| d.severity == Severity::Warning)
        .count();
    let notes = findings
        .iter()
        .filter(|(_, d)| d.severity == Severity::Info)
        .count();
    eprintln!("eds-lint: {errors} error(s), {warnings} warning(s), {notes} note(s)");

    if errors > 0 || (deny && !findings.is_empty()) {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

/// Run lint→apply rounds until a pass applies nothing, then prove the
/// result idempotent. Returns the converged source text.
fn fix_to_convergence(rw: &QueryRewriter, path: &str, src: &str) -> Result<String, ExitCode> {
    let mut text = src.to_owned();
    for _ in 0..MAX_FIX_ROUNDS {
        let diags = match rw.lint_source(&text, None) {
            Ok(d) => d,
            Err(e) => {
                eprintln!("eds-lint: {path}: {e}");
                return Err(ExitCode::from(2));
            }
        };
        let out = match apply_fixes(&text, &diags) {
            Ok(out) => out,
            Err(e) => {
                eprintln!("eds-lint: {path}: fix produced unparseable source: {e}");
                return Err(ExitCode::from(2));
            }
        };
        if out.applied == 0 {
            return Ok(text);
        }
        text = out.text;
    }
    eprintln!("eds-lint: {path}: fixes did not converge after {MAX_FIX_ROUNDS} rounds");
    Err(ExitCode::from(2))
}

/// Minimal JSON string escaping (quotes, backslashes, control chars).
fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn severity_str(d: &Diagnostic) -> &'static str {
    match d.severity {
        Severity::Error => "error",
        Severity::Warning => "warning",
        Severity::Info => "info",
    }
}

/// SARIF `level` values; `note` is the SARIF spelling of info severity.
fn sarif_level(d: &Diagnostic) -> &'static str {
    match d.severity {
        Severity::Error => "error",
        Severity::Warning => "warning",
        Severity::Info => "note",
    }
}

fn render_json(findings: &[(Option<String>, Diagnostic)]) -> String {
    let mut items = Vec::with_capacity(findings.len());
    for (file, d) in findings {
        let mut obj = String::from("{");
        obj.push_str(&format!("\"code\":\"{}\"", esc(d.code)));
        obj.push_str(&format!(",\"severity\":\"{}\"", severity_str(d)));
        if let Some(f) = file {
            obj.push_str(&format!(",\"file\":\"{}\"", esc(f)));
        }
        if let Some(r) = &d.rule {
            obj.push_str(&format!(",\"rule\":\"{}\"", esc(r)));
        }
        if let Some(b) = &d.block {
            obj.push_str(&format!(",\"block\":\"{}\"", esc(b)));
        }
        obj.push_str(&format!(",\"part\":\"{}\"", esc(&d.part)));
        let path: Vec<String> = d.path.iter().map(ToString::to_string).collect();
        obj.push_str(&format!(",\"path\":[{}]", path.join(",")));
        obj.push_str(&format!(",\"message\":\"{}\"", esc(&d.message)));
        let fixes: Vec<String> = d
            .suggestions
            .iter()
            .map(|f| format!("{{\"description\":\"{}\"}}", esc(&f.description)))
            .collect();
        obj.push_str(&format!(",\"fixes\":[{}]", fixes.join(",")));
        obj.push('}');
        items.push(obj);
    }
    format!("[{}]", items.join(","))
}

/// Render a diagnostic's suggestions as SARIF `fix` objects. Replacement
/// regions come from re-parsing the linted source with spans and matching
/// each fix's target item; fixes whose target is not in this file (or
/// findings with no file at all) are omitted — SARIF requires a concrete
/// artifact to change.
fn sarif_fixes(file: &str, src: &str, d: &Diagnostic) -> Vec<String> {
    let Ok(items) = parse_source_spanned(src) else {
        return Vec::new();
    };
    let mut out = Vec::new();
    for f in &d.suggestions {
        let Some(spanned) = items.iter().find(|si| f.target.matches(&si.item)) else {
            continue;
        };
        let (start, len) = (spanned.span.start, spanned.span.end - spanned.span.start);
        out.push(format!(
            "{{\"description\":{{\"text\":\"{}\"}},\
             \"artifactChanges\":[{{\"artifactLocation\":{{\"uri\":\"{}\"}},\
             \"replacements\":[{{\"deletedRegion\":{{\"charOffset\":{start},\
             \"charLength\":{len}}},\"insertedContent\":{{\"text\":\"{}\"}}}}]}}]}}",
            esc(&f.description),
            esc(file),
            esc(&f.replacement)
        ));
    }
    out
}

/// SARIF 2.1.0, the static-analysis interchange format GitHub code
/// scanning ingests. Hand-rolled: the schema subset used here is flat.
fn render_sarif(
    findings: &[(Option<String>, Diagnostic)],
    sources: &BTreeMap<String, String>,
) -> String {
    let mut results = Vec::with_capacity(findings.len());
    for (file, d) in findings {
        let mut r = String::from("{");
        r.push_str(&format!("\"ruleId\":\"{}\"", esc(d.code)));
        r.push_str(&format!(",\"level\":\"{}\"", sarif_level(d)));
        r.push_str(&format!(
            ",\"message\":{{\"text\":\"{}\"}}",
            esc(&d.message)
        ));
        if let Some(f) = file {
            r.push_str(&format!(
                ",\"locations\":[{{\"physicalLocation\":{{\"artifactLocation\":\
                 {{\"uri\":\"{}\"}}}}}}]",
                esc(f)
            ));
            if let Some(src) = sources.get(f) {
                let fixes = sarif_fixes(f, src, d);
                if !fixes.is_empty() {
                    r.push_str(&format!(",\"fixes\":[{}]", fixes.join(",")));
                }
            }
        }
        r.push('}');
        results.push(r);
    }
    let mut codes: Vec<&str> = findings.iter().map(|(_, d)| d.code).collect();
    codes.sort_unstable();
    codes.dedup();
    let rules: Vec<String> = codes
        .iter()
        .map(|c| format!("{{\"id\":\"{}\"}}", esc(c)))
        .collect();
    format!(
        "{{\"version\":\"2.1.0\",\
         \"$schema\":\"https://json.schemastore.org/sarif-2.1.0.json\",\
         \"runs\":[{{\"tool\":{{\"driver\":{{\"name\":\"eds-lint\",\
         \"rules\":[{}]}}}},\"results\":[{}]}}]}}",
        rules.join(","),
        results.join(",")
    )
}
