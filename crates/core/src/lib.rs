//! # eds-core — the rule-based query rewriter of the EDS server
//!
//! This crate assembles the full system of Finance & Gardarin, *"A
//! Rule-Based Query Rewriter in an Extensible DBMS"* (ICDE 1991):
//! the ESQL front-end ([`eds_esql`]), the LERA algebra ([`eds_lera`]),
//! the term-rewriting engine with the Figure-6 rule language
//! ([`eds_rewrite`]), the execution substrate ([`eds_engine`]), and —
//! here — the optimizer itself: the built-in syntactic and semantic
//! knowledge base, the Alexander/magic fixpoint reduction, the block/seq
//! pipeline, and the [`Dbms`] facade.
//!
//! ```
//! use eds_core::Dbms;
//!
//! let mut dbms = Dbms::new().unwrap();
//! dbms.execute_ddl("TABLE EDGE (Src : INT, Dst : INT);").unwrap();
//! dbms.insert("EDGE", vec![1.into(), 2.into()]).unwrap();
//! dbms.insert("EDGE", vec![2.into(), 3.into()]).unwrap();
//! let result = dbms.query("SELECT Dst FROM EDGE WHERE Src = 1;").unwrap();
//! assert_eq!(result.len(), 1);
//! ```

#![warn(missing_docs)]

pub mod discover;
pub mod env;
pub mod error;
pub mod magic;
pub mod methods;
pub mod pipeline;
pub mod semantic;
pub mod verify;

use eds_engine::{eval_with, Database, EvalOptions, EvalStats, Relation, Row};
pub use eds_engine::{parallel_stats, OptLevel, ParallelStats};
use eds_esql::{parse_query, Stmt};
use eds_lera::{translate_query, CostModel, Estimate, Expr, Schema, SchemaCtx};

pub use discover::{HarnessOracle, LeraCostOracle};
pub use eds_rewrite::discover::{DiscoverOptions, Discovery, Fragment, Funnel};
pub use env::CoreEnv;
pub use error::{CoreError, CoreResult};
pub use pipeline::{
    stats_cost_model, ExploreStats, LintPolicy, PlanCacheStats, QueryRewriter, RewriteOutcome,
    TermRewrite, BUILTIN_RULE_SOURCES,
};
pub use semantic::{figure10_constraints, ConstraintStore, IntegrityConstraint};
pub use verify::{verify_rules, Coverage, VerifyOptions, VerifyReport};

// Re-export the layer crates so downstream users need a single dependency.
pub use eds_adt as adt;
pub use eds_engine as engine;
pub use eds_esql as esql;
pub use eds_lera as lera;
pub use eds_rewrite as rewrite;

/// Adapter exposing the ESQL catalog to the rewrite-layer analyzer
/// (which cannot depend on the catalog crate directly).
struct CatalogSchemaProvider<'a>(&'a eds_esql::Catalog);

impl eds_rewrite::SchemaProvider for CatalogSchemaProvider<'_> {
    fn relation_arity(&self, name: &str) -> Option<usize> {
        self.0.relation(name).map(eds_esql::TableSchema::arity)
    }
}

/// A prepared (translated but not yet rewritten) query.
#[derive(Debug, Clone)]
pub struct Prepared {
    /// The canonical LERA plan straight out of translation.
    pub expr: Expr,
    /// Its output schema.
    pub schema: Schema,
    /// Original source text.
    pub sql: String,
}

/// A parameterized prepared statement: parse, translate, rewrite and
/// lower happened **once** at [`Dbms::prepare_stmt`] time; each
/// [`PreparedStmt::execute`] only checks the bind arity, verifies the
/// rewriter's invalidation epoch, and evaluates the cached plan with the
/// bind array — repeat executions go straight to the engine.
///
/// The cached plan is shared (`Arc`) with the rewriter's shape-tier
/// cache, and the epoch snapshot ties it to the knowledge base: any
/// rule/DDL/constraint change advances the rewriter's invalidation
/// counter, and the next `execute` transparently re-rewrites through
/// the shape tier before running.
#[derive(Debug)]
pub struct PreparedStmt {
    /// Original source text.
    sql: String,
    /// Output schema of the (parameterized) plan.
    schema: Schema,
    /// Number of `?` parameters the statement declares.
    param_count: usize,
    /// The canonical (pre-rewrite) parameterized plan, kept for epoch
    /// refreshes.
    canonical: Expr,
    /// Optimization level the statement was prepared at — part of the
    /// shape-tier cache key, and reused on epoch refreshes so a level
    /// change on the DBMS never silently re-plans an existing statement.
    level: OptLevel,
    /// Rewritten + lowered plan and the invalidation epoch it was
    /// produced under.
    plan: std::sync::Mutex<StmtPlan>,
}

#[derive(Debug)]
struct StmtPlan {
    expr: std::sync::Arc<Expr>,
    epoch: u64,
}

impl PreparedStmt {
    /// The statement's source text.
    pub fn sql(&self) -> &str {
        &self.sql
    }

    /// Output schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Number of `?` parameters a bind array must supply.
    pub fn param_count(&self) -> usize {
        self.param_count
    }

    /// The optimization level the statement was prepared at.
    pub fn opt_level(&self) -> OptLevel {
        self.level
    }

    /// Execute with a bind array: `params[i]` is the value of `?i`
    /// (numbered left to right in source order). The array length must
    /// equal [`PreparedStmt::param_count`] exactly —
    /// [`CoreError::BindMismatch`] otherwise.
    pub fn execute(&self, dbms: &Dbms, params: &[eds_adt::Value]) -> CoreResult<Relation> {
        self.execute_with_stats(dbms, params).map(|(rel, _)| rel)
    }

    /// [`PreparedStmt::execute`], also returning the engine's work
    /// counters.
    pub fn execute_with_stats(
        &self,
        dbms: &Dbms,
        params: &[eds_adt::Value],
    ) -> CoreResult<(Relation, EvalStats)> {
        if params.len() != self.param_count {
            return Err(CoreError::BindMismatch {
                expected: self.param_count,
                got: params.len(),
            });
        }
        let plan = self.current_plan(dbms)?;
        Ok(eds_engine::eval_with_params(
            &plan,
            &dbms.db,
            dbms.eval_options,
            params,
        )?)
    }

    /// The rewritten plan, re-rewriting through the shape tier when the
    /// rewriter's invalidation epoch has moved since it was cached.
    fn current_plan(&self, dbms: &Dbms) -> CoreResult<std::sync::Arc<Expr>> {
        let epoch = dbms.rewriter.invalidation_epoch();
        {
            let plan = self.plan.lock().expect("prepared plan poisoned");
            if plan.epoch == epoch {
                return Ok(std::sync::Arc::clone(&plan.expr));
            }
        }
        // Stale: the knowledge base, catalog or constraints changed.
        // Re-rewrite outside the lock (the shape tier may already hold
        // the fresh plan if a sibling statement refreshed first).
        let (expr, _, _) = dbms.rewriter.rewrite_shape_leveled(
            &self.canonical,
            &dbms.db,
            &dbms.constraints,
            self.level,
        )?;
        let mut plan = self.plan.lock().expect("prepared plan poisoned");
        plan.expr = std::sync::Arc::clone(&expr);
        plan.epoch = epoch;
        Ok(expr)
    }
}

/// Outcome of executing one statement through [`Dbms::execute`].
#[derive(Debug, Clone)]
pub enum Executed {
    /// A DDL statement was installed.
    Ddl,
    /// An `INSERT` added this many rows.
    Inserted(usize),
    /// A query produced this relation (after rewriting).
    Rows(Relation),
}

/// The integrated DBMS facade: database + extensible rewriter.
#[derive(Debug)]
pub struct Dbms {
    /// Storage, catalog, objects, ADT functions.
    pub db: Database,
    /// The rule-based rewriter.
    pub rewriter: QueryRewriter,
    /// Declared integrity constraints.
    pub constraints: ConstraintStore,
    /// Engine options (fixpoint strategy).
    pub eval_options: EvalOptions,
}

impl Dbms {
    /// A DBMS with the built-in optimization knowledge base. Engine
    /// options honor the `EDS_PARALLELISM` environment variable.
    pub fn new() -> CoreResult<Self> {
        Ok(Dbms {
            db: Database::new(),
            rewriter: QueryRewriter::with_default_rules()?,
            constraints: ConstraintStore::new(),
            eval_options: EvalOptions::from_env(),
        })
    }

    /// A DBMS whose rewriter has no rules (queries run as translated).
    pub fn without_rules() -> Self {
        Dbms {
            db: Database::new(),
            rewriter: QueryRewriter::empty(),
            constraints: ConstraintStore::new(),
            eval_options: EvalOptions::from_env(),
        }
    }

    /// Install DDL (types, tables, views). Invalidates cached rewrites:
    /// view expansion and typing consult the catalog.
    pub fn execute_ddl(&mut self, src: &str) -> CoreResult<Vec<Stmt>> {
        self.rewriter.invalidate_plan_cache();
        Ok(self.db.execute_ddl(src)?)
    }

    /// Execute arbitrary ESQL: DDL installs, `INSERT` loads, queries run
    /// through the rewriter. One [`Executed`] per statement.
    pub fn execute(&mut self, src: &str) -> CoreResult<Vec<Executed>> {
        let stmts = eds_esql::parse_statements(src)?;
        let mut out = Vec::with_capacity(stmts.len());
        for stmt in stmts {
            match stmt {
                Stmt::Query(q) => {
                    let ctx = SchemaCtx::new(&self.db.catalog);
                    let (expr, schema) = translate_query(&q, &ctx)?;
                    let prepared = Prepared {
                        expr,
                        schema,
                        sql: src.to_owned(),
                    };
                    let rewritten = self.rewrite(&prepared)?;
                    out.push(Executed::Rows(self.run_expr(&rewritten.expr)?));
                }
                Stmt::Insert(ins) => {
                    out.push(Executed::Inserted(self.db.execute_insert(&ins)?));
                }
                ddl => {
                    self.rewriter.invalidate_plan_cache();
                    self.db.install_stmt(&ddl)?;
                    out.push(Executed::Ddl);
                }
            }
        }
        Ok(out)
    }

    /// Insert a row into a base table.
    pub fn insert(&mut self, table: &str, row: Row) -> CoreResult<()> {
        Ok(self.db.insert(table, row)?)
    }

    /// Insert many rows.
    pub fn insert_all(
        &mut self,
        table: &str,
        rows: impl IntoIterator<Item = Row>,
    ) -> CoreResult<()> {
        Ok(self.db.insert_all(table, rows)?)
    }

    /// Create an object and return a reference value. Invalidates cached
    /// rewrites (object creation can install new dynamic types).
    pub fn create_object(&mut self, type_name: &str, value: eds_adt::Value) -> eds_adt::Value {
        self.rewriter.invalidate_plan_cache();
        self.db.create_object(type_name, value)
    }

    /// Add optimization rules / blocks / sequence written in the rule
    /// language — the extensibility entry point. Every batch is linted
    /// first (schema-aware: the analyzer sees the catalog) under the
    /// `EDS_LINT` policy; `deny` rejects error-carrying DDL with
    /// [`CoreError::LintRejected`], `warn` (default) reports and
    /// accepts.
    pub fn add_rule_source(&mut self, src: &str) -> CoreResult<usize> {
        self.add_rule_source_checked(src, LintPolicy::from_env())
    }

    /// [`Dbms::add_rule_source`] with an explicit lint policy.
    pub fn add_rule_source_checked(&mut self, src: &str, policy: LintPolicy) -> CoreResult<usize> {
        let schema = CatalogSchemaProvider(&self.db.catalog);
        self.rewriter.add_source_checked(src, policy, Some(&schema))
    }

    /// Statically analyze the rewriter's whole knowledge base against
    /// the current catalog and return every finding.
    pub fn lint(&self) -> Vec<eds_rewrite::Diagnostic> {
        let schema = CatalogSchemaProvider(&self.db.catalog);
        self.rewriter.lint(Some(&schema))
    }

    /// Semantically verify the rewriter's knowledge base: bounded
    /// equivalence proofs where possible, seeded differential fuzzing
    /// through the reference executor everywhere else. See
    /// [`verify::verify_rules`].
    pub fn verify(&self) -> VerifyReport {
        self.rewriter.verify()
    }

    /// [`Dbms::verify`] with explicit options.
    pub fn verify_with(&self, opts: &VerifyOptions) -> VerifyReport {
        self.rewriter.verify_with(opts)
    }

    /// Discover new prover-certified, cost-decreasing rewrite rules
    /// against the current knowledge base, cost-ranked with statistics
    /// from the stored data (see [`eds_rewrite::discover`]). The result
    /// renders to a `.rules` source loadable with
    /// [`Dbms::add_rule_source_checked`].
    pub fn discover(&self, opts: &DiscoverOptions) -> Discovery {
        self.rewriter.discover(opts, self.cost_model())
    }

    /// Declare integrity constraints written in the rule language
    /// (Figure-10 shape). Invalidates cached rewrites: the semantic
    /// block matches against the constraint store.
    pub fn add_constraint_source(&mut self, src: &str) -> CoreResult<usize> {
        self.rewriter.invalidate_plan_cache();
        self.constraints.load_source(src)
    }

    /// Parse and translate a query to its canonical LERA form.
    pub fn prepare(&self, sql: &str) -> CoreResult<Prepared> {
        let query = parse_query(sql)?;
        let ctx = SchemaCtx::new(&self.db.catalog);
        let (expr, schema) = translate_query(&query, &ctx)?;
        Ok(Prepared {
            expr,
            schema,
            sql: sql.to_owned(),
        })
    }

    /// Prepare a parameterized statement: parse and translate `sql`
    /// (with `?` placeholders numbered left to right), rewrite the
    /// parameterized plan **once** through the shape tier of the plan
    /// cache — rules whose conditions would inspect a parameter's value
    /// see a non-constant `PARAM(i)` leaf and defer to bind time — and
    /// lower it. The returned statement executes repeatedly against
    /// different bind arrays without re-parsing or re-rewriting.
    pub fn prepare_stmt(&self, sql: &str) -> CoreResult<PreparedStmt> {
        let epoch = self.rewriter.invalidation_epoch();
        let level = self.eval_options.opt_level;
        let prepared = self.prepare(sql)?;
        let param_count = prepared.expr.max_param().map_or(0, |m| m as usize + 1);
        let (expr, _, _) = self.rewriter.rewrite_shape_leveled(
            &prepared.expr,
            &self.db,
            &self.constraints,
            level,
        )?;
        Ok(PreparedStmt {
            sql: prepared.sql,
            schema: prepared.schema,
            param_count,
            canonical: prepared.expr,
            level,
            plan: std::sync::Mutex::new(StmtPlan { expr, epoch }),
        })
    }

    /// Run the rewriter over a prepared plan (through the plan cache:
    /// repeated rewrites of the same canonical plan return the cached
    /// output) at the DBMS's current optimization level
    /// ([`EvalOptions::opt_level`], the `EDS_OPT_LEVEL` knob).
    pub fn rewrite(&self, prepared: &Prepared) -> CoreResult<RewriteOutcome> {
        self.rewriter.rewrite_leveled(
            &prepared.expr,
            &self.db,
            &self.constraints,
            self.eval_options.opt_level,
        )
    }

    /// Run the rewriter over a prepared plan, bypassing the plan cache —
    /// for benchmarking the rewriter itself. Honors the current
    /// optimization level.
    pub fn rewrite_uncached(&self, prepared: &Prepared) -> CoreResult<RewriteOutcome> {
        self.rewriter.rewrite_uncached_leveled(
            &prepared.expr,
            &self.db,
            &self.constraints,
            self.eval_options.opt_level,
        )
    }

    /// Evaluate a plan.
    pub fn run_expr(&self, expr: &Expr) -> CoreResult<Relation> {
        Ok(eval_with(expr, &self.db, self.eval_options)?.0)
    }

    /// Evaluate a plan, returning work counters.
    pub fn run_expr_with_stats(&self, expr: &Expr) -> CoreResult<(Relation, EvalStats)> {
        Ok(eval_with(expr, &self.db, self.eval_options)?)
    }

    /// Snapshot of the morsel executor's process-wide counters —
    /// parallel runs, morsels dispatched, cursor contention — the
    /// execution-side companion of
    /// [`QueryRewriter::plan_cache_stats`](pipeline::QueryRewriter::plan_cache_stats).
    pub fn parallel_stats(&self) -> ParallelStats {
        parallel_stats()
    }

    /// Full pipeline: parse → translate → rewrite → execute.
    pub fn query(&self, sql: &str) -> CoreResult<Relation> {
        let prepared = self.prepare(sql)?;
        let rewritten = self.rewrite(&prepared)?;
        self.run_expr(&rewritten.expr)
    }

    /// Execute the canonical (unrewritten) plan — the baseline.
    pub fn query_unoptimized(&self, sql: &str) -> CoreResult<Relation> {
        let prepared = self.prepare(sql)?;
        self.run_expr(&prepared.expr)
    }

    /// The DBMS's current optimization level.
    pub fn opt_level(&self) -> OptLevel {
        self.eval_options.opt_level
    }

    /// Change the optimization level for subsequent queries and
    /// prepares. Already-prepared statements keep the level they were
    /// prepared at.
    pub fn set_opt_level(&mut self, level: OptLevel) {
        self.eval_options.opt_level = level;
    }

    /// A cost model whose base-relation statistics reflect the currently
    /// stored data: exact cardinalities plus the engine's per-attribute
    /// distinct-count/min-max sketches.
    pub fn cost_model(&self) -> CostModel {
        stats_cost_model(&self.db)
    }

    /// Estimate a query's plan cost before and after rewriting (the
    /// logical-optimizer quality signal the benchmark harness tracks).
    pub fn analyze(&self, sql: &str) -> CoreResult<(Estimate, Estimate)> {
        let prepared = self.prepare(sql)?;
        let rewritten = self.rewrite(&prepared)?;
        let model = self.cost_model();
        Ok((
            model.estimate(&prepared.expr),
            model.estimate(&rewritten.expr),
        ))
    }

    /// Human-readable before/after explanation of a query's rewrite at
    /// the DBMS's current optimization level, including the
    /// rule-application trace and — under [`OptLevel::Full`] — the
    /// candidate-exploration summary.
    pub fn explain(&self, sql: &str) -> CoreResult<String> {
        let level = self.eval_options.opt_level;
        let prepared = self.prepare(sql)?;
        let mut tracing = self.rewriter.clone();
        tracing.collect_trace = true;
        let rewritten =
            tracing.rewrite_leveled(&prepared.expr, &self.db, &self.constraints, level)?;
        let mut out = String::new();
        out.push_str(&format!("-- opt level: {level} --\n"));
        out.push_str("-- canonical plan --\n");
        out.push_str(&eds_lera::pretty(&prepared.expr));
        out.push_str("-- rewritten plan --\n");
        out.push_str(&eds_lera::pretty(&rewritten.expr));
        out.push_str(&format!(
            "-- {} rule applications, {} condition checks --\n",
            rewritten.stats.applications, rewritten.stats.condition_checks
        ));
        if let Some(ex) = rewritten.exploration {
            match ex.runner_up_cost {
                Some(runner_up) => out.push_str(&format!(
                    "-- considered {} candidates, chose plan with est. cost {:.0} (runner-up {:.0}) --\n",
                    ex.considered, ex.chosen_cost, runner_up
                )),
                None => out.push_str(&format!(
                    "-- considered {} candidates, chose plan with est. cost {:.0} --\n",
                    ex.considered, ex.chosen_cost
                )),
            }
        }
        for event in rewritten.trace.events() {
            out.push_str(&format!("{event}\n"));
        }
        Ok(out)
    }
}
