//! The rewriter pipeline: knowledge base + strategy + methods.
//!
//! "Any optimizer generated with the rule language is a sequence of
//! blocks of rules which can be applied multiple times" — the
//! [`QueryRewriter`] holds the rule set, the block/seq strategy and the
//! method registry, and is extensible at runtime: the database
//! implementor adds or removes rules, redefines blocks, changes limits.

use eds_engine::Database;
use eds_lera::{expr_from_term, expr_to_term, Expr};
use eds_rewrite::{
    parse_source, run_strategy, Limit, MethodRegistry, RewriteStats, RuleSet, Sequence, SourceItem,
    Strategy, Term, Trace,
};

use crate::env::CoreEnv;
use crate::error::CoreResult;
use crate::methods::register_core_methods;
use crate::semantic::ConstraintStore;

/// Embedded built-in knowledge base, written in the paper's rule
/// language (see `crates/core/rules/*.rules`).
pub const BUILTIN_RULE_SOURCES: [(&str, &str); 7] = [
    ("normalize", include_str!("../rules/normalize.rules")),
    ("merging", include_str!("../rules/merging.rules")),
    ("permutation", include_str!("../rules/permutation.rules")),
    ("fixpoint", include_str!("../rules/fixpoint.rules")),
    ("semantic", include_str!("../rules/semantic.rules")),
    ("simplify", include_str!("../rules/simplify.rules")),
    ("strategy", include_str!("../rules/strategy.rules")),
];

/// Outcome of rewriting one query.
#[derive(Debug, Clone)]
pub struct RewriteOutcome {
    /// The rewritten plan.
    pub expr: Expr,
    /// The rewritten plan as a term (before conversion back).
    pub term: Term,
    /// Rule-application counters.
    pub stats: RewriteStats,
    /// Per-application trace (when requested).
    pub trace: Trace,
    /// Whether some block hit its limit.
    pub budget_exhausted: bool,
}

/// The extensible query rewriter.
#[derive(Debug, Clone)]
pub struct QueryRewriter {
    rules: RuleSet,
    strategy: Strategy,
    methods: MethodRegistry,
    /// Collect a rule-application trace on every rewrite.
    pub collect_trace: bool,
}

impl QueryRewriter {
    /// A rewriter with no rules (methods still registered).
    pub fn empty() -> Self {
        let mut methods = MethodRegistry::with_builtins();
        register_core_methods(&mut methods);
        QueryRewriter {
            rules: RuleSet::new(),
            strategy: Strategy::new(),
            methods,
            collect_trace: false,
        }
    }

    /// A rewriter loaded with the full built-in knowledge base.
    pub fn with_default_rules() -> CoreResult<Self> {
        let mut rw = Self::empty();
        for (_, src) in BUILTIN_RULE_SOURCES {
            rw.add_source(src)?;
        }
        Ok(rw)
    }

    /// Parse rule-language source (rules, blocks, seq) into the
    /// knowledge base — the extensibility entry point for the database
    /// implementor.
    pub fn add_source(&mut self, src: &str) -> CoreResult<usize> {
        let items = parse_source(src)?;
        let n = items.len();
        for item in items {
            match item {
                SourceItem::Rule(rule) => self.rules.add(rule),
                SourceItem::Block(block) => self.strategy.add_block(block),
                SourceItem::Seq(seq) => self.strategy.set_sequence(seq),
            }
        }
        Ok(n)
    }

    /// Remove a rule by name.
    pub fn remove_rule(&mut self, name: &str) -> bool {
        self.rules.remove(name)
    }

    /// The rule set.
    pub fn rules(&self) -> &RuleSet {
        &self.rules
    }

    /// The strategy (blocks and sequence).
    pub fn strategy(&self) -> &Strategy {
        &self.strategy
    }

    /// Mutable strategy access (block limits, sequence changes).
    pub fn strategy_mut(&mut self) -> &mut Strategy {
        &mut self.strategy
    }

    /// The method registry (for registering user methods).
    pub fn methods_mut(&mut self) -> &mut MethodRegistry {
        &mut self.methods
    }

    /// Set every block's limit — the conclusion's dynamic-limit knob
    /// ("simple queries do not need sophisticated optimization: a 0
    /// limit can then be given to all blocks").
    pub fn set_all_limits(&mut self, limit: Limit) {
        let names: Vec<String> = self.strategy.blocks().map(|b| b.name.clone()).collect();
        for name in names {
            let _ = self.strategy.set_limit(&name, limit);
        }
    }

    /// Replace the sequence meta-rule.
    pub fn set_sequence(&mut self, seq: Sequence) {
        self.strategy.set_sequence(seq);
    }

    /// Allocate block limits dynamically from the query's complexity —
    /// the paper's conclusion: "the limit given to a block of rules could
    /// also be allocated dynamically, according to the complexity of the
    /// query. Simple queries (e.g., search on a key) do not need
    /// sophisticated optimization." Each block gets
    /// `per_node × node_count` condition checks; trivial one-operator
    /// plans get 0 (rewriting disabled).
    pub fn set_adaptive_limits(&mut self, query: &Expr, per_node: u64) {
        let nodes = query.node_count() as u64;
        let limit = if nodes <= 2 {
            Limit::Finite(0)
        } else {
            Limit::Finite(nodes.saturating_mul(per_node))
        };
        self.set_all_limits(limit);
    }

    /// Rewrite a term directly.
    pub fn rewrite_term(
        &self,
        term: Term,
        db: &Database,
        constraints: &ConstraintStore,
    ) -> CoreResult<(Term, RewriteStats, Trace, bool)> {
        let env = CoreEnv { db, constraints };
        let outcome = run_strategy(
            &self.rules,
            &self.strategy,
            &self.methods,
            &env,
            term,
            self.collect_trace,
        )?;
        Ok((
            outcome.term,
            outcome.stats,
            outcome.trace,
            outcome.budget_exhausted,
        ))
    }

    /// Rewrite a LERA plan.
    pub fn rewrite(
        &self,
        expr: &Expr,
        db: &Database,
        constraints: &ConstraintStore,
    ) -> CoreResult<RewriteOutcome> {
        let term = expr_to_term(expr);
        let (term, stats, trace, budget_exhausted) = self.rewrite_term(term, db, constraints)?;
        let expr = expr_from_term(&term)?;
        Ok(RewriteOutcome {
            expr,
            term,
            stats,
            trace,
            budget_exhausted,
        })
    }
}
