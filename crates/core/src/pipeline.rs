//! The rewriter pipeline: knowledge base + strategy + methods.
//!
//! "Any optimizer generated with the rule language is a sequence of
//! blocks of rules which can be applied multiple times" — the
//! [`QueryRewriter`] holds the rule set, the block/seq strategy and the
//! method registry, and is extensible at runtime: the database
//! implementor adds or removes rules, redefines blocks, changes limits.

use std::collections::{HashMap, HashSet};
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use eds_engine::{Database, OptLevel};
use eds_lera::{expr_from_term, expr_to_term, ColumnStats, CostModel, Expr, RelationStats};
use eds_rewrite::{
    analyze, analyze::duplicate_rule, parse_source, run_strategy, run_strategy_explore, Diagnostic,
    Exploration, ExploreOptions, Limit, MethodRegistry, RewriteStats, RuleSet, SchemaProvider,
    Sequence, SourceItem, Strategy, Term, Trace,
};

use crate::env::CoreEnv;
use crate::error::{CoreError, CoreResult};
use crate::methods::register_core_methods;
use crate::semantic::ConstraintStore;

/// What to do with static-analysis findings when rule DDL is registered.
/// Selected per process with `EDS_LINT=deny|warn|off`; the default is
/// `warn`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum LintPolicy {
    /// Reject the source when any *error*-severity diagnostic fires
    /// (warnings are still only printed).
    Deny,
    /// Print every diagnostic to stderr and accept the source.
    #[default]
    Warn,
    /// Skip analysis entirely.
    Off,
}

impl LintPolicy {
    /// Read `EDS_LINT` (case-insensitive; unknown values fall back to
    /// the `Warn` default). Read per call, not cached, so tests and
    /// long-lived shells can flip it.
    pub fn from_env() -> Self {
        match std::env::var("EDS_LINT") {
            Ok(v) if v.trim().eq_ignore_ascii_case("deny") => LintPolicy::Deny,
            Ok(v) if v.trim().eq_ignore_ascii_case("off") => LintPolicy::Off,
            _ => LintPolicy::Warn,
        }
    }
}

/// Embedded built-in knowledge base, written in the paper's rule
/// language (see `crates/core/rules/*.rules`).
pub const BUILTIN_RULE_SOURCES: [(&str, &str); 7] = [
    ("normalize", include_str!("../rules/normalize.rules")),
    ("merging", include_str!("../rules/merging.rules")),
    ("permutation", include_str!("../rules/permutation.rules")),
    ("fixpoint", include_str!("../rules/fixpoint.rules")),
    ("semantic", include_str!("../rules/semantic.rules")),
    ("simplify", include_str!("../rules/simplify.rules")),
    ("strategy", include_str!("../rules/strategy.rules")),
];

/// Candidate-exploration defaults for [`OptLevel::Full`]: keep up to
/// this many candidate plans per rewrite ...
pub const EXPLORE_K: usize = 8;
/// ... spend at most this many condition checks normalizing them ...
pub const EXPLORE_MAX_CHECKS: u64 = 20_000;
/// ... and stop early once the best cost seen is below
/// `EXPLORE_CHECK_COST × expected remaining checks` (exploration would
/// cost more than it could still win).
pub const EXPLORE_CHECK_COST: f64 = 32.0;

/// The choice-point blocks of the built-in strategy: where rule order is
/// genuinely a *choice* (operator merging, permutation, and semantic
/// CHOOSE-style transformations), not mere normalization.
pub const EXPLORE_BLOCKS: [&str; 3] = ["merging", "permutation", "semantic"];

/// Outcome of rewriting one query.
#[derive(Debug, Clone)]
pub struct RewriteOutcome {
    /// The rewritten plan.
    pub expr: Expr,
    /// The rewritten plan as a term (before conversion back).
    pub term: Term,
    /// Rule-application counters.
    pub stats: RewriteStats,
    /// Per-application trace (when requested).
    pub trace: Trace,
    /// Whether some block hit its limit.
    pub budget_exhausted: bool,
    /// Candidate-exploration summary ([`OptLevel::Full`] only).
    pub exploration: Option<Exploration>,
}

/// Result of one term-level rewrite (the leveled API's return shape).
#[derive(Debug, Clone)]
pub struct TermRewrite {
    /// The rewritten term.
    pub term: Term,
    /// Rule-application counters.
    pub stats: RewriteStats,
    /// Per-application trace (when requested).
    pub trace: Trace,
    /// Whether some block hit its limit.
    pub budget_exhausted: bool,
    /// Candidate-exploration summary ([`OptLevel::Full`] only).
    pub exploration: Option<Exploration>,
}

/// One cached rewrite result. Traces are never cached: tracing rewrites
/// bypass the cache entirely.
#[derive(Clone)]
struct CachedPlan {
    term: Term,
    stats: RewriteStats,
    budget_exhausted: bool,
    exploration: Option<Exploration>,
}

/// One cached prepared-statement shape: the rewritten **and lowered**
/// plan, shared (`Arc`) by every prepared statement with the same
/// fingerprint so a shape hit skips the term→algebra conversion too.
#[derive(Clone)]
struct ShapedPlan {
    expr: std::sync::Arc<Expr>,
    stats: RewriteStats,
    budget_exhausted: bool,
}

/// Default plan-cache capacity: cached rewrites above this count evict
/// the whole cache (simple, and a workload with more than this many
/// distinct prepared shapes is already re-preparing, not re-executing).
/// Overridable per process with `EDS_PLAN_CACHE_CAP` (0 disables
/// caching) or per rewriter with
/// [`QueryRewriter::set_plan_cache_cap`].
const PLAN_CACHE_CAP: usize = 256;

/// Capacity for new rewriters: `EDS_PLAN_CACHE_CAP` when it parses,
/// else [`PLAN_CACHE_CAP`]. Read at construction (not cached in a
/// static) so tests can vary it.
fn plan_cache_cap_from_env() -> usize {
    std::env::var("EDS_PLAN_CACHE_CAP")
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
        .unwrap_or(PLAN_CACHE_CAP)
}

/// Plan-cache effectiveness counters, exposed for tests and the bench
/// report. `evictions` counts *entries dropped* by capacity-triggered
/// clears; `invalidations` counts knowledge-base/catalog invalidation
/// events (each of which also empties the cache).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PlanCacheStats {
    /// Rewrites answered from the term tier.
    pub hits: u64,
    /// Rewrites that ran the strategy (and then filled the term tier).
    pub misses: u64,
    /// Prepared-shape rewrites answered from the shape tier (the
    /// rewritten *and lowered* plan came straight out of the cache).
    pub shape_hits: u64,
    /// Prepared-shape rewrites that fell through the shape tier (and
    /// then filled it; the fall-through itself also counts a term-tier
    /// hit or miss).
    pub shape_misses: u64,
    /// Entries dropped because a tier reached its capacity.
    pub evictions: u64,
    /// Invalidation events (rule/strategy/method/catalog/constraint
    /// changes). Doubles as the epoch prepared statements check before
    /// reusing their cached plan.
    pub invalidations: u64,
}

/// Interior-mutable counter cell backing [`PlanCacheStats`] (atomics so
/// `rewrite(&self)` can count from shared references).
#[derive(Default)]
struct PlanCacheCounters {
    hits: AtomicU64,
    misses: AtomicU64,
    shape_hits: AtomicU64,
    shape_misses: AtomicU64,
    evictions: AtomicU64,
    invalidations: AtomicU64,
}

impl PlanCacheCounters {
    fn snapshot(&self) -> PlanCacheStats {
        PlanCacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            shape_hits: self.shape_hits.load(Ordering::Relaxed),
            shape_misses: self.shape_misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            invalidations: self.invalidations.load(Ordering::Relaxed),
        }
    }
}

/// Cumulative candidate-exploration counters across every
/// [`OptLevel::Full`] rewrite this rewriter ran (cache hits replay a
/// stored result and do not re-count). The per-rewrite values live in
/// [`RewriteStats`]; this is the process-lifetime aggregate `.stats`
/// reports.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ExploreStats {
    /// Candidate plans scored (including each rewrite's mainline).
    pub candidates: u64,
    /// Condition checks spent normalizing candidates (not counted in
    /// the mainline `condition_checks`).
    pub checks: u64,
    /// Rewrites that stopped exploring because the budget ran out or
    /// the expected win fell below the exploration cost.
    pub budget_stops: u64,
    /// Rewrites where a candidate beat the mainline plan.
    pub wins: u64,
}

/// Interior-mutable counter cell backing [`ExploreStats`].
#[derive(Default)]
struct ExploreCounters {
    candidates: AtomicU64,
    checks: AtomicU64,
    budget_stops: AtomicU64,
    wins: AtomicU64,
}

impl ExploreCounters {
    fn absorb(&self, stats: &RewriteStats) {
        self.candidates
            .fetch_add(stats.explore_candidates, Ordering::Relaxed);
        self.checks
            .fetch_add(stats.explore_checks, Ordering::Relaxed);
        self.budget_stops
            .fetch_add(stats.explore_budget_stops, Ordering::Relaxed);
        self.wins.fetch_add(stats.explore_wins, Ordering::Relaxed);
    }

    fn snapshot(&self) -> ExploreStats {
        ExploreStats {
            candidates: self.candidates.load(Ordering::Relaxed),
            checks: self.checks.load(Ordering::Relaxed),
            budget_stops: self.budget_stops.load(Ordering::Relaxed),
            wins: self.wins.load(Ordering::Relaxed),
        }
    }
}

/// A [`CostModel`] whose base-relation statistics reflect the currently
/// stored data: exact cardinalities plus the engine's per-attribute
/// distinct-count/min-max sketches, converted into the estimator's
/// [`RelationStats`]. Views and unknown names are left to the model's
/// defaults.
pub fn stats_cost_model(db: &Database) -> CostModel {
    let mut model = CostModel::new();
    for name in db.catalog.table_names() {
        if let Some(ts) = db.table_stats(name) {
            let columns = ts
                .columns
                .iter()
                .enumerate()
                .map(|(i, c)| ColumnStats {
                    distinct: c.distinct(),
                    min: c.min,
                    max: c.max,
                    null_frac: ts.null_frac(i),
                })
                .collect();
            model.set_stats(
                name,
                RelationStats {
                    card: ts.card as f64,
                    columns,
                },
            );
        } else if let Some(card) = db.cardinality(name) {
            model.set_card(name, card as f64);
        }
    }
    model
}

/// The extensible query rewriter.
pub struct QueryRewriter {
    rules: RuleSet,
    strategy: Strategy,
    methods: MethodRegistry,
    /// Collect a rule-application trace on every rewrite.
    pub collect_trace: bool,
    /// Rewrite-output cache, keyed on the optimization level and the
    /// canonical input term (terms carry their hash from interning, so
    /// lookups cost one table probe, not a plan traversal). The level is
    /// part of the key because levels produce different plans for the
    /// same canonical term. Interior-mutable so `rewrite(&self)` can
    /// fill it; invalidated by every knowledge-base mutation and, via
    /// [`QueryRewriter::invalidate_plan_cache`], by catalog/constraint
    /// changes in the embedding DBMS.
    plan_cache: Mutex<HashMap<(OptLevel, Term), CachedPlan>>,
    /// Second cache tier for prepared statements, keyed on the level and
    /// the *parameterized* canonical term (the statement fingerprint: `?`
    /// placeholders appear as `PARAM(i)` leaves, so statements differing
    /// only in bind values share one entry). Stores the rewritten and
    /// lowered plan; invalidated together with the term tier.
    shape_cache: Mutex<HashMap<(OptLevel, Term), ShapedPlan>>,
    /// Capacity of each cache tier (0 disables caching entirely).
    plan_cache_cap: usize,
    /// Hit/miss/eviction/invalidation counters.
    counters: PlanCacheCounters,
    /// Cumulative candidate-exploration counters.
    explore_counters: ExploreCounters,
}

impl fmt::Debug for QueryRewriter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("QueryRewriter")
            .field("rules", &self.rules)
            .field("strategy", &self.strategy)
            .field("methods", &self.methods)
            .field("collect_trace", &self.collect_trace)
            .field("plan_cache_len", &self.plan_cache_len())
            .field("shape_cache_len", &self.shape_cache_len())
            .field("plan_cache_cap", &self.plan_cache_cap)
            .field("plan_cache_stats", &self.plan_cache_stats())
            .finish()
    }
}

impl Clone for QueryRewriter {
    fn clone(&self) -> Self {
        QueryRewriter {
            rules: self.rules.clone(),
            strategy: self.strategy.clone(),
            methods: self.methods.clone(),
            collect_trace: self.collect_trace,
            // The clone starts cold: cached plans are cheap to recompute
            // and sharing them would couple invalidation across copies.
            // Counters start at zero with it — they describe this
            // instance's cache, not its lineage.
            plan_cache: Mutex::new(HashMap::new()),
            shape_cache: Mutex::new(HashMap::new()),
            plan_cache_cap: self.plan_cache_cap,
            counters: PlanCacheCounters::default(),
            explore_counters: ExploreCounters::default(),
        }
    }
}

impl QueryRewriter {
    /// A rewriter with no rules (methods still registered).
    pub fn empty() -> Self {
        let mut methods = MethodRegistry::with_builtins();
        register_core_methods(&mut methods);
        QueryRewriter {
            rules: RuleSet::new(),
            strategy: Strategy::new(),
            methods,
            collect_trace: false,
            plan_cache: Mutex::new(HashMap::new()),
            shape_cache: Mutex::new(HashMap::new()),
            plan_cache_cap: plan_cache_cap_from_env(),
            counters: PlanCacheCounters::default(),
            explore_counters: ExploreCounters::default(),
        }
    }

    /// A rewriter loaded with the full built-in knowledge base. Loads
    /// with [`LintPolicy::Off`]: the library is pinned lint-clean by its
    /// own test and the CI `eds-lint` job, and re-analyzing it on every
    /// construction would spam stderr for no new information.
    pub fn with_default_rules() -> CoreResult<Self> {
        let mut rw = Self::empty();
        for (_, src) in BUILTIN_RULE_SOURCES {
            rw.add_source_checked(src, LintPolicy::Off, None)?;
        }
        rw.strategy.set_explore_blocks(EXPLORE_BLOCKS);
        Ok(rw)
    }

    /// Parse rule-language source (rules, blocks, seq) into the
    /// knowledge base — the extensibility entry point for the database
    /// implementor. Lints under the environment policy (`EDS_LINT`,
    /// default `warn`) without catalog knowledge; use
    /// [`QueryRewriter::add_source_checked`] (or go through
    /// `Dbms::add_rule_source`) for schema-aware checks or an explicit
    /// policy.
    pub fn add_source(&mut self, src: &str) -> CoreResult<usize> {
        self.add_source_checked(src, LintPolicy::from_env(), None)
    }

    /// [`QueryRewriter::add_source`] with an explicit lint policy and
    /// optional catalog knowledge. The source is parsed, staged against
    /// the current knowledge base, and analyzed *before* anything is
    /// committed: under [`LintPolicy::Deny`] an error-severity finding
    /// rejects the whole batch with [`CoreError::LintRejected`] and the
    /// rewriter is left untouched. Diagnostics are attributed to the new
    /// items only — pre-existing rules do not re-report.
    pub fn add_source_checked(
        &mut self,
        src: &str,
        policy: LintPolicy,
        schema: Option<&dyn SchemaProvider>,
    ) -> CoreResult<usize> {
        let items = parse_source(src)?;
        if policy != LintPolicy::Off {
            let diagnostics = self.stage_and_lint(&items, schema);
            if policy == LintPolicy::Deny && diagnostics.iter().any(Diagnostic::is_error) {
                return Err(CoreError::LintRejected { diagnostics });
            }
            for d in &diagnostics {
                eprintln!("eds-lint: {d}");
            }
        }
        let n = items.len();
        for item in items {
            match item {
                SourceItem::Rule(rule) => {
                    self.rules.add(rule);
                }
                SourceItem::Block(block) => self.strategy.add_block(block),
                SourceItem::Seq(seq) => self.strategy.set_sequence(seq),
            }
        }
        self.invalidate_plan_cache();
        Ok(n)
    }

    /// Lint rule-language source against the current knowledge base
    /// without committing anything. Returns the diagnostics attributed
    /// to the source's items (the `eds-lint` binary's per-file mode).
    pub fn lint_source(
        &self,
        src: &str,
        schema: Option<&dyn SchemaProvider>,
    ) -> CoreResult<Vec<Diagnostic>> {
        let items = parse_source(src)?;
        Ok(self.stage_and_lint(&items, schema))
    }

    /// Analyze the knowledge base as it stands (every rule, the whole
    /// strategy) and return all findings.
    pub fn lint(&self, schema: Option<&dyn SchemaProvider>) -> Vec<Diagnostic> {
        analyze(&self.rules, &self.strategy, &self.methods, schema)
    }

    /// Semantically verify the knowledge base with default options: the
    /// bounded equivalence prover plus the differential fuzzer
    /// (`eds-verify`; see [`crate::verify`]).
    pub fn verify(&self) -> crate::verify::VerifyReport {
        self.verify_with(&crate::verify::VerifyOptions::default())
    }

    /// [`QueryRewriter::verify`] with explicit options (seed, case
    /// budget, instrument selection).
    pub fn verify_with(&self, opts: &crate::verify::VerifyOptions) -> crate::verify::VerifyReport {
        crate::verify::verify_rules(self.rules.iter(), &self.methods, opts)
    }

    /// Discover new rewrite rules against this knowledge base: the
    /// survival funnel of [`eds_rewrite::discover`] gated by the bounded
    /// prover, the differential fuzz harness, the supplied cost model
    /// (with a positive predicate-operator weight), and redundancy
    /// against the rules already registered here.
    pub fn discover(
        &self,
        opts: &eds_rewrite::DiscoverOptions,
        model: CostModel,
    ) -> eds_rewrite::Discovery {
        let cost = crate::discover::LeraCostOracle::new(model);
        let fuzz = crate::discover::HarnessOracle::new(&self.methods, opts.seed, 32);
        eds_rewrite::discover_rules(&self.rules, &self.methods, opts, &cost, &fuzz)
    }

    /// Stage `items` on a copy of the knowledge base, run the analyzer
    /// over the staged state, and keep only diagnostics that belong to
    /// the new items (new rule names, new block names, the sequence when
    /// the batch replaces it). Duplicate rule registration (`EDS008`) is
    /// detected here — the assembled `RuleSet` can no longer show it.
    fn stage_and_lint(
        &self,
        items: &[SourceItem],
        schema: Option<&dyn SchemaProvider>,
    ) -> Vec<Diagnostic> {
        let mut diagnostics = Vec::new();
        let mut staged_rules = self.rules.clone();
        let mut staged_strategy = self.strategy.clone();
        let mut new_rules: HashSet<&str> = HashSet::new();
        let mut new_blocks: HashSet<&str> = HashSet::new();
        let mut has_seq = false;
        for item in items {
            match item {
                SourceItem::Rule(rule) => {
                    if staged_rules.contains(&rule.name) {
                        diagnostics.push(duplicate_rule(&rule.name));
                    }
                    staged_rules.add(rule.clone());
                    new_rules.insert(rule.name.as_str());
                }
                SourceItem::Block(block) => {
                    staged_strategy.add_block(block.clone());
                    new_blocks.insert(block.name.as_str());
                }
                SourceItem::Seq(seq) => {
                    staged_strategy.set_sequence(seq.clone());
                    has_seq = true;
                }
            }
        }
        let all = analyze(&staged_rules, &staged_strategy, &self.methods, schema);
        diagnostics.extend(all.into_iter().filter(|d| {
            d.rule.as_deref().is_some_and(|r| new_rules.contains(r))
                || d.block.as_deref().is_some_and(|b| new_blocks.contains(b))
                || (d.rule.is_none() && d.block.is_none() && has_seq && d.part == "seq")
                // A new sequence re-wires the whole flow graph, so the
                // cross-block findings are this batch's even when the
                // rules and blocks on the cycle pre-date it.
                || (has_seq && matches!(d.code, "EDS016" | "EDS017"))
        }));
        diagnostics
    }

    /// Remove a rule by name.
    pub fn remove_rule(&mut self, name: &str) -> bool {
        self.invalidate_plan_cache();
        self.rules.remove(name)
    }

    /// The rule set.
    pub fn rules(&self) -> &RuleSet {
        &self.rules
    }

    /// The strategy (blocks and sequence).
    pub fn strategy(&self) -> &Strategy {
        &self.strategy
    }

    /// Mutable strategy access (block limits, sequence changes). Drops
    /// every cached plan: the caller may change rewrite behavior.
    pub fn strategy_mut(&mut self) -> &mut Strategy {
        self.invalidate_plan_cache();
        &mut self.strategy
    }

    /// The method registry (read-only; the analyzer consults it).
    pub fn methods(&self) -> &MethodRegistry {
        &self.methods
    }

    /// The method registry (for registering user methods). Drops every
    /// cached plan: the caller may change rewrite behavior.
    pub fn methods_mut(&mut self) -> &mut MethodRegistry {
        self.invalidate_plan_cache();
        &mut self.methods
    }

    /// Set every block's limit — the conclusion's dynamic-limit knob
    /// ("simple queries do not need sophisticated optimization: a 0
    /// limit can then be given to all blocks").
    pub fn set_all_limits(&mut self, limit: Limit) {
        let names: Vec<String> = self.strategy.blocks().map(|b| b.name.clone()).collect();
        for name in names {
            let _ = self.strategy.set_limit(&name, limit);
        }
        self.invalidate_plan_cache();
    }

    /// Replace the sequence meta-rule.
    pub fn set_sequence(&mut self, seq: Sequence) {
        self.strategy.set_sequence(seq);
        self.invalidate_plan_cache();
    }

    /// Allocate block limits dynamically from the query's complexity —
    /// the paper's conclusion: "the limit given to a block of rules could
    /// also be allocated dynamically, according to the complexity of the
    /// query. Simple queries (e.g., search on a key) do not need
    /// sophisticated optimization." Each block gets
    /// `per_node × node_count` condition checks; trivial one-operator
    /// plans get 0 (rewriting disabled).
    pub fn set_adaptive_limits(&mut self, query: &Expr, per_node: u64) {
        let nodes = query.node_count() as u64;
        let limit = if nodes <= 2 {
            Limit::Finite(0)
        } else {
            Limit::Finite(nodes.saturating_mul(per_node))
        };
        self.set_all_limits(limit);
    }

    /// Drop every cached rewrite. Called automatically on knowledge-base
    /// mutations; the embedding DBMS calls it when the catalog or the
    /// constraint store changes (rewrites consult both).
    pub fn invalidate_plan_cache(&self) {
        self.counters.invalidations.fetch_add(1, Ordering::Relaxed);
        self.plan_cache.lock().expect("plan cache poisoned").clear();
        self.shape_cache
            .lock()
            .expect("shape cache poisoned")
            .clear();
    }

    /// Number of cached rewrites in the term tier.
    pub fn plan_cache_len(&self) -> usize {
        self.plan_cache.lock().expect("plan cache poisoned").len()
    }

    /// Number of cached prepared shapes in the shape tier.
    pub fn shape_cache_len(&self) -> usize {
        self.shape_cache.lock().expect("shape cache poisoned").len()
    }

    /// Monotonic invalidation epoch: the count of invalidation events so
    /// far. A prepared statement snapshots this when it caches its plan
    /// and re-rewrites when the counter has moved — the same hooks that
    /// clear the caches (rule/DDL/constraint changes) advance it.
    pub fn invalidation_epoch(&self) -> u64 {
        self.counters.invalidations.load(Ordering::Relaxed)
    }

    /// The plan cache's capacity (entries; 0 = caching disabled).
    pub fn plan_cache_cap(&self) -> usize {
        self.plan_cache_cap
    }

    /// Change the plan cache's capacity. Shrinking below the current
    /// size clears the cache (counted as evictions), matching what the
    /// next insert would do.
    pub fn set_plan_cache_cap(&mut self, cap: usize) {
        self.plan_cache_cap = cap;
        let mut cache = self.plan_cache.lock().expect("plan cache poisoned");
        if cache.len() > cap {
            self.counters
                .evictions
                .fetch_add(cache.len() as u64, Ordering::Relaxed);
            cache.clear();
        }
        let mut shapes = self.shape_cache.lock().expect("shape cache poisoned");
        if shapes.len() > cap {
            self.counters
                .evictions
                .fetch_add(shapes.len() as u64, Ordering::Relaxed);
            shapes.clear();
        }
    }

    /// Snapshot of the hit/miss/eviction/invalidation counters.
    pub fn plan_cache_stats(&self) -> PlanCacheStats {
        self.counters.snapshot()
    }

    /// Cumulative candidate-exploration counters.
    pub fn explore_stats(&self) -> ExploreStats {
        self.explore_counters.snapshot()
    }

    /// Rewrite a term directly, consulting the plan cache, at
    /// [`OptLevel::Simple`]. See [`QueryRewriter::rewrite_term_leveled`].
    pub fn rewrite_term(
        &self,
        term: Term,
        db: &Database,
        constraints: &ConstraintStore,
    ) -> CoreResult<(Term, RewriteStats, Trace, bool)> {
        self.rewrite_term_leveled(term, db, constraints, OptLevel::Simple)
            .map(|r| (r.term, r.stats, r.trace, r.budget_exhausted))
    }

    /// Rewrite a term directly at an optimization level, consulting the
    /// plan cache (keyed on `(level, term)`). Tracing rewrites bypass
    /// the cache (a cache hit has no applications to trace, which would
    /// make `explain` output misleading).
    pub fn rewrite_term_leveled(
        &self,
        term: Term,
        db: &Database,
        constraints: &ConstraintStore,
        level: OptLevel,
    ) -> CoreResult<TermRewrite> {
        if self.collect_trace || self.plan_cache_cap == 0 {
            return self.rewrite_term_uncached_leveled(term, db, constraints, level);
        }
        let key = (level, term);
        if let Some(hit) = self
            .plan_cache
            .lock()
            .expect("plan cache poisoned")
            .get(&key)
        {
            self.counters.hits.fetch_add(1, Ordering::Relaxed);
            return Ok(TermRewrite {
                term: hit.term.clone(),
                stats: hit.stats,
                trace: Trace::default(),
                budget_exhausted: hit.budget_exhausted,
                exploration: hit.exploration,
            });
        }
        self.counters.misses.fetch_add(1, Ordering::Relaxed);
        let out = self.rewrite_term_uncached_leveled(key.1.clone(), db, constraints, level)?;
        let mut cache = self.plan_cache.lock().expect("plan cache poisoned");
        if cache.len() >= self.plan_cache_cap {
            self.counters
                .evictions
                .fetch_add(cache.len() as u64, Ordering::Relaxed);
            cache.clear();
        }
        cache.insert(
            key,
            CachedPlan {
                term: out.term.clone(),
                stats: out.stats,
                budget_exhausted: out.budget_exhausted,
                exploration: out.exploration,
            },
        );
        Ok(out)
    }

    /// Rewrite a term without touching the plan cache (neither lookup
    /// nor fill), at [`OptLevel::Simple`] — for benchmarking the
    /// rewriter itself.
    pub fn rewrite_term_uncached(
        &self,
        term: Term,
        db: &Database,
        constraints: &ConstraintStore,
    ) -> CoreResult<(Term, RewriteStats, Trace, bool)> {
        self.rewrite_term_uncached_leveled(term, db, constraints, OptLevel::Simple)
            .map(|r| (r.term, r.stats, r.trace, r.budget_exhausted))
    }

    /// Rewrite a term without touching the plan cache, at an
    /// optimization level:
    ///
    /// * [`OptLevel::None`] — a *trivial statement* (a point scan over
    ///   one stored relation, [`Expr::is_trivial_scan`]) skips rewriting
    ///   entirely and runs as translated; anything structural falls back
    ///   to `Simple` (skipping rewrites that restructure joins or
    ///   recursion would be a correctness-neutral but large performance
    ///   trap).
    /// * [`OptLevel::Simple`] — bounded syntactic saturation, today's
    ///   behavior.
    /// * [`OptLevel::Full`] — `Simple` plus candidate exploration at the
    ///   declared choice-point blocks, scored with a statistics-backed
    ///   cost model built from the engine's sketches.
    pub fn rewrite_term_uncached_leveled(
        &self,
        term: Term,
        db: &Database,
        constraints: &ConstraintStore,
        level: OptLevel,
    ) -> CoreResult<TermRewrite> {
        if level == OptLevel::None {
            let trivial = expr_from_term(&term).is_ok_and(|e| e.is_trivial_scan());
            if trivial {
                return Ok(TermRewrite {
                    term,
                    stats: RewriteStats::default(),
                    trace: Trace::default(),
                    budget_exhausted: false,
                    exploration: None,
                });
            }
        }
        let env = CoreEnv { db, constraints };
        let outcome = if level == OptLevel::Full {
            let model = stats_cost_model(db);
            let score = |t: &Term| expr_from_term(t).ok().map(|e| model.estimate(&e).cost);
            let opts = ExploreOptions {
                k: EXPLORE_K,
                max_checks: EXPLORE_MAX_CHECKS,
                check_cost: EXPLORE_CHECK_COST,
                score: &score,
            };
            let outcome = run_strategy_explore(
                &self.rules,
                &self.strategy,
                &self.methods,
                &env,
                term,
                self.collect_trace,
                &opts,
            )?;
            self.explore_counters.absorb(&outcome.stats);
            outcome
        } else {
            run_strategy(
                &self.rules,
                &self.strategy,
                &self.methods,
                &env,
                term,
                self.collect_trace,
            )?
        };
        Ok(TermRewrite {
            term: outcome.term,
            stats: outcome.stats,
            trace: outcome.trace,
            budget_exhausted: outcome.budget_exhausted,
            exploration: outcome.exploration,
        })
    }

    /// [`QueryRewriter::rewrite_shape_leveled`] at [`OptLevel::Simple`].
    pub fn rewrite_shape(
        &self,
        expr: &Expr,
        db: &Database,
        constraints: &ConstraintStore,
    ) -> CoreResult<(std::sync::Arc<Expr>, RewriteStats, bool)> {
        self.rewrite_shape_leveled(expr, db, constraints, OptLevel::Simple)
    }

    /// Rewrite a parameterized canonical plan through the **shape
    /// tier**: the key is the optimization level plus the canonical term
    /// itself (`?` placeholders are `PARAM(i)` leaves, so every
    /// statement with the same shape *prepared at the same level* shares
    /// one entry regardless of eventual bind values), and the entry
    /// stores the rewritten *and lowered* plan behind an `Arc` — a hit
    /// skips rule matching and the term→algebra conversion both. Misses
    /// fall through to the term tier, warming it for ad-hoc rewrites of
    /// the same canonical term.
    pub fn rewrite_shape_leveled(
        &self,
        expr: &Expr,
        db: &Database,
        constraints: &ConstraintStore,
        level: OptLevel,
    ) -> CoreResult<(std::sync::Arc<Expr>, RewriteStats, bool)> {
        use std::sync::Arc;
        let term = expr_to_term(expr);
        if self.plan_cache_cap == 0 {
            let out = self.rewrite_term_uncached_leveled(term, db, constraints, level)?;
            return Ok((
                Arc::new(expr_from_term(&out.term)?),
                out.stats,
                out.budget_exhausted,
            ));
        }
        let key = (level, term);
        if let Some(hit) = self
            .shape_cache
            .lock()
            .expect("shape cache poisoned")
            .get(&key)
        {
            self.counters.shape_hits.fetch_add(1, Ordering::Relaxed);
            return Ok((Arc::clone(&hit.expr), hit.stats, hit.budget_exhausted));
        }
        self.counters.shape_misses.fetch_add(1, Ordering::Relaxed);
        let out = self.rewrite_term_leveled(key.1.clone(), db, constraints, level)?;
        let lowered = Arc::new(expr_from_term(&out.term)?);
        let mut cache = self.shape_cache.lock().expect("shape cache poisoned");
        if cache.len() >= self.plan_cache_cap {
            self.counters
                .evictions
                .fetch_add(cache.len() as u64, Ordering::Relaxed);
            cache.clear();
        }
        cache.insert(
            key,
            ShapedPlan {
                expr: Arc::clone(&lowered),
                stats: out.stats,
                budget_exhausted: out.budget_exhausted,
            },
        );
        Ok((lowered, out.stats, out.budget_exhausted))
    }

    /// Rewrite a LERA plan (through the plan cache) at
    /// [`OptLevel::Simple`].
    pub fn rewrite(
        &self,
        expr: &Expr,
        db: &Database,
        constraints: &ConstraintStore,
    ) -> CoreResult<RewriteOutcome> {
        self.rewrite_leveled(expr, db, constraints, OptLevel::Simple)
    }

    /// Rewrite a LERA plan (through the plan cache) at an optimization
    /// level.
    pub fn rewrite_leveled(
        &self,
        expr: &Expr,
        db: &Database,
        constraints: &ConstraintStore,
        level: OptLevel,
    ) -> CoreResult<RewriteOutcome> {
        let term = expr_to_term(expr);
        let out = self.rewrite_term_leveled(term, db, constraints, level)?;
        let expr = expr_from_term(&out.term)?;
        Ok(RewriteOutcome {
            expr,
            term: out.term,
            stats: out.stats,
            trace: out.trace,
            budget_exhausted: out.budget_exhausted,
            exploration: out.exploration,
        })
    }

    /// Rewrite a LERA plan, bypassing the plan cache, at
    /// [`OptLevel::Simple`] — for benchmarking the rewriter itself.
    pub fn rewrite_uncached(
        &self,
        expr: &Expr,
        db: &Database,
        constraints: &ConstraintStore,
    ) -> CoreResult<RewriteOutcome> {
        self.rewrite_uncached_leveled(expr, db, constraints, OptLevel::Simple)
    }

    /// Rewrite a LERA plan, bypassing the plan cache, at an optimization
    /// level.
    pub fn rewrite_uncached_leveled(
        &self,
        expr: &Expr,
        db: &Database,
        constraints: &ConstraintStore,
        level: OptLevel,
    ) -> CoreResult<RewriteOutcome> {
        let term = expr_to_term(expr);
        let out = self.rewrite_term_uncached_leveled(term, db, constraints, level)?;
        let expr = expr_from_term(&out.term)?;
        Ok(RewriteOutcome {
            expr,
            term: out.term,
            stats: out.stats,
            trace: out.trace,
            budget_exhausted: out.budget_exhausted,
            exploration: out.exploration,
        })
    }
}
