//! Explicit semantic knowledge: integrity constraints (Section 6.1).
//!
//! "The language we propose for defining constraints is the rules language
//! for defining optimization rules": a constraint is declared as a rule of
//! the Figure-10 shape
//!
//! ```text
//! PointAbs : F(x) / ISA(x, Point) --> F(x) AND PROJECT(x, ABS) > 0 / ;
//! ```
//!
//! The loader recognizes this shape and stores `(declared type, predicate
//! template over x)`. The `ADDCONSTRAINTS` method then instantiates
//! templates for the attribute references a query actually mentions.
//! Because applicability is checked with `ISA`, a constraint declared on a
//! supertype also fires for its subtypes — the subclass-substitution rule
//! of Figure 11 falls out for free.

use eds_adt::{Type, TypeRegistry};
use eds_rewrite::methods::parse_type_spec;
use eds_rewrite::{parse_source, RwResult, SourceItem, Term};

use crate::error::{CoreError, CoreResult};

/// One declared integrity constraint.
#[derive(Debug, Clone, PartialEq)]
pub struct IntegrityConstraint {
    /// Rule name as declared.
    pub name: String,
    /// Type the constrained variable must conform to.
    pub ty: Type,
    /// Predicate template containing the variable `x`.
    pub template: Term,
}

/// The store of declared integrity constraints.
#[derive(Debug, Clone, Default)]
pub struct ConstraintStore {
    constraints: Vec<IntegrityConstraint>,
}

impl ConstraintStore {
    /// Empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of declared constraints.
    pub fn len(&self) -> usize {
        self.constraints.len()
    }

    /// True when no constraints are declared.
    pub fn is_empty(&self) -> bool {
        self.constraints.is_empty()
    }

    /// All declared constraints.
    pub fn iter(&self) -> impl Iterator<Item = &IntegrityConstraint> {
        self.constraints.iter()
    }

    /// Parse constraint declarations written in the rule language and add
    /// them to the store.
    pub fn load_source(&mut self, src: &str) -> CoreResult<usize> {
        let items = parse_source(src)?;
        let mut added = 0;
        for item in items {
            match item {
                SourceItem::Rule(rule) => {
                    let c =
                        constraint_from_rule(&rule.name, &rule.lhs, &rule.constraints, &rule.rhs)
                            .map_err(|message| CoreError::BadConstraintRule {
                            rule: rule.name.clone(),
                            message,
                        })?;
                    self.constraints.push(c);
                    added += 1;
                }
                other => {
                    return Err(CoreError::BadConstraintRule {
                        rule: "<meta>".into(),
                        message: format!("expected constraint rules only, found {other:?}"),
                    })
                }
            }
        }
        Ok(added)
    }

    /// Add a constraint directly.
    pub fn add(&mut self, constraint: IntegrityConstraint) {
        self.constraints.push(constraint);
    }

    /// Templates applicable to a value of type `ty` (via `ISA`, so
    /// supertype constraints apply to subtypes).
    pub fn templates_for(&self, ty: &Type, types: &TypeRegistry) -> Vec<Term> {
        self.constraints
            .iter()
            .filter(|c| types.isa(ty, &c.ty))
            .map(|c| c.template.clone())
            .collect()
    }
}

/// Recognize the Figure-10 shape:
/// `F(x) / ISA(x, T) --> F(x) AND pred /` with no methods.
fn constraint_from_rule(
    name: &str,
    lhs: &Term,
    constraints: &[Term],
    rhs: &Term,
) -> Result<IntegrityConstraint, String> {
    // lhs must be F(x).
    let var = match lhs.as_app() {
        Some(("F", [Term::Var(v)])) => *v,
        _ => return Err("left-hand side must be F(x)".into()),
    };
    // Exactly one ISA(x, T) constraint.
    let ty = match constraints {
        [c] => match c.as_app() {
            Some(("ISA", [Term::Var(v), spec])) if *v == var => match spec.as_app() {
                Some((tname, [])) => parse_type_spec(tname, &TypeRegistry::new()),
                _ => return Err("ISA type specification must be a type name".into()),
            },
            _ => return Err("constraint must be ISA(x, TypeName)".into()),
        },
        _ => return Err("exactly one ISA constraint expected".into()),
    };
    // rhs must be AND(F(x), pred).
    let template = match rhs.as_app() {
        Some(("AND", [f, pred])) if f == lhs => pred.clone(),
        _ => return Err("right-hand side must be F(x) AND <predicate>".into()),
    };
    // The template may only use the constrained variable.
    if template.variables().iter().any(|v| *v != var) {
        return Err("predicate may only reference the constrained variable".into());
    }
    // Canonicalize the variable name to `x`.
    let template = rename_var(&template, var.as_str(), "x");
    Ok(IntegrityConstraint {
        name: name.to_owned(),
        ty,
        template,
    })
}

fn rename_var(t: &Term, from: &str, to: &str) -> Term {
    match t {
        Term::Var(v) if v == from => Term::var(to),
        Term::App(h, args) => Term::App(*h, args.iter().map(|a| rename_var(a, from, to)).collect()),
        other => other.clone(),
    }
}

/// The paper's Figure-10 constraints for the film database, ready to load.
pub fn figure10_constraints() -> &'static str {
    "PointAbsPositive : F(x) / ISA(x, Point) --> F(x) AND PROJECT(x, ABS) > 0 / ;\n\
     PointOrdPositive : F(x) / ISA(x, Point) --> F(x) AND PROJECT(x, ORD) > 0 / ;\n\
     CategoryDomain : F(x) / ISA(x, Category) --> \
       F(x) AND MEMBER(x, {'Comedy', 'Adventure', 'Science Fiction', 'Western'}) / ;"
}

/// Parse helper used by tests.
pub fn parse_constraint(src: &str) -> RwResult<Vec<SourceItem>> {
    parse_source(src)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn loads_figure10_constraints() {
        let mut store = ConstraintStore::new();
        let n = store.load_source(figure10_constraints()).unwrap();
        assert_eq!(n, 3);
        let point = Type::Named("Point".into());
        let types = TypeRegistry::new();
        let templates = store.templates_for(&point, &types);
        assert_eq!(templates.len(), 2);
        assert_eq!(templates[0].to_string(), "(PROJECT(x, ABS) > 0)");
    }

    #[test]
    fn category_template_has_enum_domain() {
        let mut store = ConstraintStore::new();
        store.load_source(figure10_constraints()).unwrap();
        let cat = Type::Named("Category".into());
        let types = TypeRegistry::new();
        let templates = store.templates_for(&cat, &types);
        assert_eq!(templates.len(), 1);
        let rendered = templates[0].to_string();
        assert!(
            rendered.contains("MEMBER(x, SET('Comedy', 'Adventure'"),
            "{rendered}"
        );
    }

    #[test]
    fn subtype_constraints_apply() {
        // A constraint on Person applies to Actor (declared subtype).
        let mut types = TypeRegistry::new();
        types
            .define(eds_adt::TypeDef {
                name: "Person".into(),
                body: eds_adt::TypeBody::Structure(Type::Tuple(vec![])),
                is_object: true,
                supertype: None,
                methods: vec![],
            })
            .unwrap();
        types
            .define(eds_adt::TypeDef {
                name: "Actor".into(),
                body: eds_adt::TypeBody::Structure(Type::Tuple(vec![])),
                is_object: true,
                supertype: Some("Person".into()),
                methods: vec![],
            })
            .unwrap();
        let mut store = ConstraintStore::new();
        store
            .load_source("PersonNamed : F(x) / ISA(x, Person) --> F(x) AND NOT(ISEMPTY(PROJECT(x, NAME))) / ;")
            .unwrap();
        assert_eq!(
            store
                .templates_for(&Type::Named("Actor".into()), &types)
                .len(),
            1
        );
        assert_eq!(
            store
                .templates_for(&Type::Named("Person".into()), &types)
                .len(),
            1
        );
        assert!(store.templates_for(&Type::Int, &types).is_empty());
    }

    #[test]
    fn malformed_constraints_rejected() {
        let mut store = ConstraintStore::new();
        // Wrong lhs shape.
        assert!(store
            .load_source("Bad : G(x, y) / ISA(x, Point) --> G(x, y) AND x > 0 / ;")
            .is_err());
        // Missing ISA.
        assert!(store
            .load_source("Bad : F(x) / --> F(x) AND x > 0 / ;")
            .is_err());
        // Foreign variable in the predicate.
        assert!(store
            .load_source("Bad : F(x) / ISA(x, Point) --> F(x) AND y > 0 / ;")
            .is_err());
        assert!(store.is_empty());
    }

    #[test]
    fn variable_canonicalized_to_x() {
        let mut store = ConstraintStore::new();
        store
            .load_source("C : F(v) / ISA(v, INT) --> F(v) AND v >= 0 / ;")
            .unwrap();
        let t = &store.iter().next().unwrap().template;
        assert_eq!(t.to_string(), "(x >= 0)");
    }
}
