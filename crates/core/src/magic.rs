//! The Alexander / magic-sets fixpoint reduction (Section 5.3).
//!
//! Given `fix(R, E(R))` queried with some attributes bound to constants,
//! the transformation produces an equivalent fixpoint that "focuses on
//! relevant facts": the binding is pushed into the seed branches, and the
//! recursion only ever extends tuples that already carry the binding.
//! "This avoids unnecessary translation from algebra to logic, and from
//! logic to algebra" — the transformation is implemented directly on the
//! LERA expression.
//!
//! ## Supported class
//!
//! The body must be a union of *seed* branches (not referencing `R`) and
//! *recursive* branches where each recursive branch is a `search` whose
//! inputs mention `R` either
//!
//! 1. **once** (linear recursion), with every bound attribute projected
//!    unchanged from that occurrence — the binding then provably flows
//!    through the recursion; or
//! 2. **twice in the composition shape** `search((R, R), [1.a = 2.b],
//!    (prefix of 1, suffix of 2))` — the nonlinear transitive-closure
//!    idiom of the paper's `BETTER_THAN` view (Figure 5). Composition is
//!    associative, so the nonlinear fixpoint equals its seed-linear
//!    form `search((seed, R), ...)`, which case 1 then reduces.
//!
//! Anything else returns `None` and the query is left untouched (always
//! safe: the transformation is an optimization, not a requirement).

use eds_adt::Value;
use eds_lera::{CmpOp, Expr, Scalar};

/// Apply the transformation. `bound` lists `(attribute index (1-based),
/// constant)` pairs the outer query fixes on the fixpoint's output.
pub fn alexander(name: &str, body: &Expr, bound: &[(usize, Value)]) -> Option<Expr> {
    if bound.is_empty() {
        return None;
    }
    let branches: Vec<&Expr> = match body {
        Expr::Union(items) => items.iter().collect(),
        other => vec![other],
    };
    let seeds: Vec<&Expr> = branches
        .iter()
        .copied()
        .filter(|b| !b.references(name))
        .collect();
    let recs: Vec<&Expr> = branches
        .iter()
        .copied()
        .filter(|b| b.references(name))
        .collect();
    if seeds.is_empty() || recs.is_empty() {
        return None;
    }

    // The full (unrestricted) seed, used by the TC linearization.
    let full_seed = union_of(seeds.iter().map(|e| (*e).clone()).collect());

    // Transform every recursive branch into a linear branch that
    // provably preserves the bound attributes (trying both the left- and
    // right-linear forms for the composition idiom).
    let mut new_branches: Vec<Expr> = Vec::new();
    for rec in &recs {
        let linear = linearize(rec, name, &full_seed)?
            .into_iter()
            .find(|cand| check_binding_preserved(cand, name, bound).is_some())?;
        new_branches.push(linear);
    }

    // Restrict the seeds by the pushed selection.
    let pred = Scalar::conjoin(
        bound
            .iter()
            .map(|(j, v)| Scalar::cmp(CmpOp::Eq, Scalar::attr(1, *j), Scalar::Const(v.clone())))
            .collect(),
    );
    let mut body_items: Vec<Expr> = seeds
        .iter()
        .map(|s| Expr::Filter {
            input: Box::new((*s).clone()),
            pred: pred.clone(),
        })
        .collect();
    body_items.extend(new_branches);

    Some(Expr::Fix {
        name: name.to_owned(),
        body: Box::new(union_of(body_items)),
    })
}

fn union_of(mut items: Vec<Expr>) -> Expr {
    if items.len() == 1 {
        items.remove(0)
    } else {
        Expr::Union(items)
    }
}

/// Positions (1-based) of `Base(name)` among a search's inputs; `None`
/// when the variable occurs anywhere deeper than a direct input.
fn occurrence_positions(inputs: &[Expr], name: &str) -> Option<Vec<usize>> {
    let mut positions = Vec::new();
    for (i, input) in inputs.iter().enumerate() {
        match input {
            Expr::Base(n) if n.eq_ignore_ascii_case(name) => positions.push(i + 1),
            other if other.references(name) => return None,
            _ => {}
        }
    }
    Some(positions)
}

/// Produce the candidate *linear* versions of a recursive branch: the
/// branch itself when already linear, or — for the two-occurrence
/// composition idiom — both the seed-left and seed-right linearizations
/// (composition is associative, so both are sound).
fn linearize(branch: &Expr, name: &str, full_seed: &Expr) -> Option<Vec<Expr>> {
    let Expr::Search { inputs, pred, proj } = branch else {
        return None;
    };
    let occurrences = occurrence_positions(inputs, name)?;
    match occurrences.len() {
        1 => Some(vec![branch.clone()]),
        2 => {
            let (p1, p2) = (occurrences[0], occurrences[1]);
            // Strict composition shape: exactly the two occurrences as
            // inputs, one equality conjunct joining them, projection
            // drawing each output attribute from one of the two.
            if inputs.len() != 2 {
                return None;
            }
            let conjuncts = pred.conjuncts();
            if conjuncts.len() != 1 {
                return None;
            }
            let Scalar::Cmp {
                op: CmpOp::Eq,
                left,
                right,
            } = conjuncts[0]
            else {
                return None;
            };
            let (Scalar::Attr { rel: rl, .. }, Scalar::Attr { rel: rr, .. }) =
                (left.as_ref(), right.as_ref())
            else {
                return None;
            };
            if !((*rl == p1 && *rr == p2) || (*rl == p2 && *rr == p1)) {
                return None;
            }
            for p in proj {
                let Scalar::Attr { .. } = p else { return None };
            }
            // Either occurrence may become the seed; the binding check
            // in the caller picks the form that preserves the binding.
            let candidates = [p1, p2]
                .into_iter()
                .map(|replaced| {
                    let mut new_inputs = inputs.clone();
                    new_inputs[replaced - 1] = full_seed.clone();
                    Expr::Search {
                        inputs: new_inputs,
                        pred: pred.clone(),
                        proj: proj.clone(),
                    }
                })
                .collect();
            Some(candidates)
        }
        _ => None,
    }
}

/// A bound attribute `j` is preserved when the branch projects it
/// verbatim from the recursive occurrence: `proj[j-1] == Attr(pos, j)`.
fn check_binding_preserved(branch: &Expr, name: &str, bound: &[(usize, Value)]) -> Option<()> {
    let Expr::Search { inputs, proj, .. } = branch else {
        return None;
    };
    let occurrences = occurrence_positions(inputs, name)?;
    let [pos] = occurrences.as_slice() else {
        return None;
    };
    for (j, _) in bound {
        match proj.get(j - 1) {
            Some(Scalar::Attr { rel, attr }) if rel == pos && attr == j => {}
            _ => return None,
        }
    }
    Some(())
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The BETTER_THAN fixpoint of Figure 5:
    /// fix(BT, union({ π(DOMINATE), search((BT, BT), [1.2 = 2.1], (1.1, 2.2)) })).
    fn better_than() -> Expr {
        Expr::Fix {
            name: "BT".into(),
            body: Box::new(Expr::Union(vec![
                seed(),
                Expr::search(
                    vec![Expr::base("BT"), Expr::base("BT")],
                    Scalar::eq(Scalar::attr(1, 2), Scalar::attr(2, 1)),
                    vec![Scalar::attr(1, 1), Scalar::attr(2, 2)],
                ),
            ])),
        }
    }

    fn seed() -> Expr {
        Expr::search(
            vec![Expr::base("DOMINATE")],
            Scalar::true_(),
            vec![Scalar::attr(1, 2), Scalar::attr(1, 3)],
        )
    }

    #[test]
    fn nonlinear_tc_reduced_on_second_attribute() {
        let Expr::Fix { body, .. } = better_than() else {
            unreachable!()
        };
        let bound = vec![(2usize, Value::str("Quinn"))];
        let reduced = alexander("BT", &body, &bound).expect("TC shape should reduce");
        let Expr::Fix { name, body } = &reduced else {
            panic!("expected fix")
        };
        assert_eq!(name, "BT");
        let Expr::Union(items) = body.as_ref() else {
            panic!("expected union body")
        };
        assert_eq!(items.len(), 2);
        // Seed is filtered by the binding.
        let Expr::Filter { pred, .. } = &items[0] else {
            panic!("expected filtered seed, got {}", items[0].op_name())
        };
        assert_eq!(pred.to_string(), "1.2 = 'Quinn'");
        // Recursive branch linearized: (seed, BT).
        let Expr::Search { inputs, .. } = &items[1] else {
            panic!("expected search branch")
        };
        assert!(matches!(&inputs[0], Expr::Search { .. })); // the seed expression
        assert!(matches!(&inputs[1], Expr::Base(n) if n == "BT"));
    }

    #[test]
    fn binding_on_first_attribute_uses_left_linearization() {
        // Binding 1 flows from occurrence 1; the transformation keeps
        // occurrence 1 recursive and replaces occurrence 2 by the seed.
        let Expr::Fix { body, .. } = better_than() else {
            unreachable!()
        };
        let bound = vec![(1usize, Value::str("Quinn"))];
        let reduced = alexander("BT", &body, &bound).expect("left-linear form applies");
        let Expr::Fix { body, .. } = &reduced else {
            panic!()
        };
        let Expr::Union(items) = body.as_ref() else {
            panic!()
        };
        let Expr::Search { inputs, .. } = &items[1] else {
            panic!("expected search branch")
        };
        assert!(matches!(&inputs[0], Expr::Base(n) if n == "BT"));
        assert!(matches!(&inputs[1], Expr::Search { .. }));
    }

    #[test]
    fn linear_recursion_reduced_directly() {
        // fix(T, union({E', search((E, T), [1.2 = 2.1], (1.1, 2.2))}))
        // bound on attribute 2: preserved from T (position 2).
        let body = Expr::Union(vec![
            Expr::base("E"),
            Expr::search(
                vec![Expr::base("E"), Expr::base("T")],
                Scalar::eq(Scalar::attr(1, 2), Scalar::attr(2, 1)),
                vec![Scalar::attr(1, 1), Scalar::attr(2, 2)],
            ),
        ]);
        let reduced = alexander("T", &body, &[(2, Value::Int(9))]).unwrap();
        let Expr::Fix { body, .. } = &reduced else {
            panic!()
        };
        let Expr::Union(items) = body.as_ref() else {
            panic!()
        };
        assert!(matches!(&items[0], Expr::Filter { .. }));
        // Recursive branch untouched.
        assert!(matches!(&items[1], Expr::Search { .. }));
    }

    #[test]
    fn linear_recursion_with_unpreserved_binding_refused() {
        // Binding on attribute 1, which the branch takes from E, not T.
        let body = Expr::Union(vec![
            Expr::base("E"),
            Expr::search(
                vec![Expr::base("E"), Expr::base("T")],
                Scalar::eq(Scalar::attr(1, 2), Scalar::attr(2, 1)),
                vec![Scalar::attr(1, 1), Scalar::attr(2, 2)],
            ),
        ]);
        assert!(alexander("T", &body, &[(1, Value::Int(9))]).is_none());
    }

    #[test]
    fn all_recursive_body_refused() {
        let body = Expr::search(
            vec![Expr::base("T"), Expr::base("T")],
            Scalar::eq(Scalar::attr(1, 2), Scalar::attr(2, 1)),
            vec![Scalar::attr(1, 1), Scalar::attr(2, 2)],
        );
        assert!(alexander("T", &body, &[(2, Value::Int(1))]).is_none());
    }

    #[test]
    fn deep_occurrence_refused() {
        // The variable hides below a union inside an input: unsupported.
        let body = Expr::Union(vec![
            Expr::base("E"),
            Expr::search(
                vec![Expr::Union(vec![Expr::base("T"), Expr::base("E")])],
                Scalar::true_(),
                vec![Scalar::attr(1, 1), Scalar::attr(1, 2)],
            ),
        ]);
        assert!(alexander("T", &body, &[(2, Value::Int(1))]).is_none());
    }

    #[test]
    fn empty_binding_refused() {
        let Expr::Fix { body, .. } = better_than() else {
            unreachable!()
        };
        assert!(alexander("BT", &body, &[]).is_none());
    }
}
