//! Errors of the rewriter facade.

use std::fmt;

use eds_adt::AdtError;
use eds_engine::EngineError;
use eds_esql::EsqlError;
use eds_lera::LeraError;
use eds_rewrite::{Diagnostic, RewriteError};

/// Top-level error of the query rewriter.
#[derive(Debug, Clone, PartialEq)]
pub enum CoreError {
    /// Front-end failure.
    Esql(EsqlError),
    /// Algebra failure.
    Lera(LeraError),
    /// Rule-engine failure.
    Rewrite(RewriteError),
    /// Execution failure.
    Engine(EngineError),
    /// ADT failure.
    Adt(AdtError),
    /// A rule source declared as an integrity constraint does not have
    /// the expected `F(x) / ISA(x, T) --> F(x) AND pred /` shape.
    BadConstraintRule {
        /// The offending rule name.
        rule: String,
        /// Why it was rejected.
        message: String,
    },
    /// Rule DDL rejected by the static analyzer under the `deny` lint
    /// policy. Carries every diagnostic of the rejected batch (warnings
    /// included), so callers can render the full report.
    LintRejected {
        /// Analyzer findings for the rejected source.
        diagnostics: Vec<Diagnostic>,
    },
    /// A prepared statement was executed with the wrong number of bind
    /// values.
    BindMismatch {
        /// `?` parameters the statement declares.
        expected: usize,
        /// Values the bind array supplied.
        got: usize,
    },
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::Esql(e) => write!(f, "{e}"),
            CoreError::Lera(e) => write!(f, "{e}"),
            CoreError::Rewrite(e) => write!(f, "{e}"),
            CoreError::Engine(e) => write!(f, "{e}"),
            CoreError::Adt(e) => write!(f, "{e}"),
            CoreError::BadConstraintRule { rule, message } => {
                write!(f, "integrity constraint rule '{rule}': {message}")
            }
            CoreError::LintRejected { diagnostics } => {
                let errors = diagnostics.iter().filter(|d| d.is_error()).count();
                write!(f, "rule source rejected by eds-lint ({errors} error(s))")?;
                for d in diagnostics {
                    write!(f, "\n  {d}")?;
                }
                Ok(())
            }
            CoreError::BindMismatch { expected, got } => {
                write!(
                    f,
                    "statement takes {expected} bind value(s), {got} supplied"
                )
            }
        }
    }
}

impl std::error::Error for CoreError {}

impl From<EsqlError> for CoreError {
    fn from(e: EsqlError) -> Self {
        CoreError::Esql(e)
    }
}
impl From<LeraError> for CoreError {
    fn from(e: LeraError) -> Self {
        CoreError::Lera(e)
    }
}
impl From<RewriteError> for CoreError {
    fn from(e: RewriteError) -> Self {
        CoreError::Rewrite(e)
    }
}
impl From<EngineError> for CoreError {
    fn from(e: EngineError) -> Self {
        CoreError::Engine(e)
    }
}
impl From<AdtError> for CoreError {
    fn from(e: AdtError) -> Self {
        CoreError::Adt(e)
    }
}

/// Result alias for the rewriter facade.
pub type CoreResult<T> = Result<T, CoreError>;
