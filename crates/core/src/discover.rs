//! Rule discovery wired to the system's real oracles.
//!
//! The discovery pipeline in [`eds_rewrite::discover`] is oracle-
//! agnostic; this module supplies the two production implementations:
//!
//! * [`LeraCostOracle`] — scores a candidate qualification with the
//!   LERA cost model: the term's variables are grounded to attribute
//!   references of a synthetic base relation, the term is bridged to a
//!   [`Scalar`] predicate, and the cost of `FILTER(R, pred)` is
//!   estimated with a positive [`CostModel::pred_op_weight`] so
//!   structurally cheaper predicates win;
//! * [`HarnessOracle`] — cross-examines a candidate with the seeded
//!   differential fuzz harness ([`crate::verify::verify_rules`]): a
//!   rule the bounded prover certified on its small domain can still be
//!   wrong on real worlds (wider value pools, collection semantics),
//!   and executing before/after worlds catches that class.

use std::collections::BTreeMap;

use eds_lera::{scalar_from_term, CostModel, Expr};
use eds_rewrite::discover::{CostOracle, DifferentialOracle};
use eds_rewrite::{MethodRegistry, Rule, Term};

use crate::verify::{verify_rules, VerifyOptions};

use eds_rewrite::verify::EDS030;

/// Cost oracle backed by the LERA cost model. See the module docs.
pub struct LeraCostOracle {
    model: CostModel,
}

impl LeraCostOracle {
    /// Wrap a cost model, forcing a positive predicate-operator weight
    /// (a zero weight cannot rank candidates whose selectivity the
    /// sketches do not separate).
    pub fn new(mut model: CostModel) -> Self {
        if model.pred_op_weight <= 0.0 {
            model.pred_op_weight = 1.0;
        }
        LeraCostOracle { model }
    }
}

/// Ground a candidate qualification's variables: scalar variables
/// become attribute references of the synthetic input relation, boolean
/// variables become `attr = 0` comparisons. Consistent per variable, so
/// both sides of a rule see the same grounding.
fn ground(t: &Term, attrs: &mut BTreeMap<String, usize>, bool_ctx: bool) -> Term {
    match t {
        Term::Var(v) => {
            let next = attrs.len() + 1;
            let idx = *attrs.entry(v.as_str().to_owned()).or_insert(next);
            let attr = Term::attr(1, idx as i64);
            if bool_ctx {
                Term::app("=", vec![attr, Term::int(0)])
            } else {
                attr
            }
        }
        Term::App(h, args) => {
            let scalar_args = matches!(
                (h.as_str(), args.len()),
                ("=" | "<>" | "<" | "<=" | ">" | ">=", 2) | ("+" | "-" | "*", 2) | ("-", 1)
            );
            let child_bool = if scalar_args { false } else { bool_ctx };
            let grounded: Vec<Term> = args.iter().map(|a| ground(a, attrs, child_bool)).collect();
            Term::App(*h, grounded.into())
        }
        _ => t.clone(),
    }
}

impl CostOracle for LeraCostOracle {
    fn qual_cost(&self, t: &Term) -> Option<f64> {
        let mut attrs = BTreeMap::new();
        let grounded = ground(t, &mut attrs, true);
        let pred = scalar_from_term(&grounded).ok()?;
        let plan = Expr::Filter {
            input: Box::new(Expr::base("R")),
            pred,
        };
        Some(self.model.estimate(&plan).cost)
    }
}

/// Differential oracle backed by the verification harness' fuzzer.
pub struct HarnessOracle<'a> {
    methods: &'a MethodRegistry,
    opts: VerifyOptions,
}

impl<'a> HarnessOracle<'a> {
    /// Fuzz candidates with `cases` seeded worlds each.
    pub fn new(methods: &'a MethodRegistry, seed: u64, cases: usize) -> Self {
        HarnessOracle {
            methods,
            opts: VerifyOptions {
                seed,
                cases_per_rule: cases,
                fuzz: true,
                // The discovery pipeline already ran the prover; only
                // the differential instrument is wanted here.
                prove: false,
            },
        }
    }
}

impl DifferentialOracle for HarnessOracle<'_> {
    fn refute(&self, rule: &Rule) -> Option<String> {
        let report = verify_rules([rule], self.methods, &self.opts);
        report
            .diagnostics
            .iter()
            .find(|d| d.code == EDS030)
            .map(|d| d.message.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lera_cost_ranks_simpler_predicates_cheaper() {
        let oracle = LeraCostOracle::new(CostModel::default());
        let x = Term::var("x");
        let simple = Term::app("=", vec![x.clone(), Term::int(0)]);
        let wrapped = Term::app("NOT", vec![Term::app("NOT", vec![simple.clone()])]);
        let (a, b) = (
            oracle.qual_cost(&simple).unwrap(),
            oracle.qual_cost(&wrapped).unwrap(),
        );
        assert!(a < b, "{a} !< {b}");
    }

    #[test]
    fn boolean_variables_ground_consistently_on_both_sides() {
        let oracle = LeraCostOracle::new(CostModel::default());
        // NOT(NOT(f)) --> f: both sides must be scoreable and the
        // wrapped side strictly dearer.
        let f = Term::var("f");
        let lhs = Term::app("NOT", vec![Term::app("NOT", vec![f.clone()])]);
        let (a, b) = (
            oracle.qual_cost(&f).unwrap(),
            oracle.qual_cost(&lhs).unwrap(),
        );
        assert!(a < b, "{a} !< {b}");
    }

    #[test]
    fn the_harness_oracle_refutes_a_bad_rule_and_clears_a_good_one() {
        let mut methods = MethodRegistry::with_builtins();
        crate::methods::register_core_methods(&mut methods);
        let parse = |src: &str| match eds_rewrite::parse_source(src).unwrap().remove(0) {
            eds_rewrite::SourceItem::Rule(r) => r,
            _ => unreachable!(),
        };
        let oracle = HarnessOracle::new(&methods, 0xED5, 32);
        let bad = parse("Bad : NOT(f AND g) / --> NOT(f) OR g / ;");
        assert!(oracle.refute(&bad).is_some());
        let good = parse("Good : NOT(f AND g) / --> NOT(f) OR NOT(g) / ;");
        assert!(oracle.refute(&good).is_none());
    }
}
