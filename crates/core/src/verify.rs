//! The `eds-verify` harness: semantic verification of a knowledge base.
//!
//! Combines the rewrite layer's two instruments over a concrete rule set:
//!
//! 1. the bounded equivalence **prover**
//!    ([`eds_rewrite::verify::equiv`]) — exhaustive 3-valued valuation of
//!    pure boolean/comparison rules;
//! 2. the differential **fuzzer** ([`eds_rewrite::verify::fuzz`]) — per
//!    rule, seeded random worlds whose subject the rule's LHS matches,
//!    executed through the reference executor before and after a
//!    single-rule rewrite and compared row for row (`bag_eq`: `union*`
//!    has bag semantics, so multiset equality is the right oracle).
//!
//! A fuzz counterexample is shrunk to a fixpoint (drop rows, hoist
//! boolean children, collapse comparisons, zero constants — each
//! candidate re-validated: the rule must still apply and the results
//! must still differ) before it is reported, and carries its seed so
//! `eds-lint --verify --seed N` replays it exactly.

use eds_engine::{eval_reference, Database, EvalOptions, Relation};
use eds_lera::expr_from_term;
use eds_rewrite::verify::{equiv, fuzz};
use eds_rewrite::{
    apply_rule_once, BasicEnv, Diagnostic, FuzzCase, GenOutcome, MethodRegistry, RewriteStats,
    Rule, Term,
};

use crate::env::CoreEnv;
use crate::semantic::ConstraintStore;

/// Default base seed (mixed per rule via [`fuzz::rule_seed`]).
pub const DEFAULT_SEED: u64 = 0xED5;

/// Knobs for [`verify_rules`].
#[derive(Debug, Clone)]
pub struct VerifyOptions {
    /// Base seed; every rule derives its own stream from it.
    pub seed: u64,
    /// Differential cases attempted per rule.
    pub cases_per_rule: usize,
    /// Run the differential fuzzer.
    pub fuzz: bool,
    /// Run the bounded equivalence prover.
    pub prove: bool,
}

impl Default for VerifyOptions {
    fn default() -> Self {
        VerifyOptions {
            seed: DEFAULT_SEED,
            cases_per_rule: 32,
            fuzz: true,
            prove: true,
        }
    }
}

/// Per-rule coverage achieved by a verification run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Coverage {
    /// The prover showed LHS ≡ RHS over the bounded domain.
    Proved,
    /// Not provable, but the fuzzer executed differential cases (count
    /// of cases in which the rule actually fired).
    Fuzzed(usize),
    /// Neither instrument reached the rule.
    None,
}

/// Result of verifying a rule set.
#[derive(Debug, Default)]
pub struct VerifyReport {
    /// All findings (EDS030 refutations, EDS032 conditionals, EDS031
    /// coverage notes), in rule order.
    pub diagnostics: Vec<Diagnostic>,
    /// `(rule, coverage)` for every rule examined.
    pub coverage: Vec<(String, Coverage)>,
    /// Shrunk, replayable fuzz counterexamples (also summarized in the
    /// corresponding EDS030 diagnostics).
    pub counterexamples: Vec<(String, FuzzCase)>,
}

impl VerifyReport {
    /// Any error-severity finding (a refuted rule)?
    pub fn has_errors(&self) -> bool {
        self.diagnostics.iter().any(Diagnostic::is_error)
    }

    /// Rules the prover certified.
    pub fn proved(&self) -> impl Iterator<Item = &str> {
        self.coverage
            .iter()
            .filter(|(_, c)| *c == Coverage::Proved)
            .map(|(r, _)| r.as_str())
    }

    /// One-line human summary.
    pub fn summary(&self) -> String {
        let proved = self.proved().count();
        let fuzzed = self
            .coverage
            .iter()
            .filter(|(_, c)| matches!(c, Coverage::Fuzzed(n) if *n > 0))
            .count();
        let uncovered = self
            .coverage
            .iter()
            .filter(|(_, c)| matches!(c, Coverage::None | Coverage::Fuzzed(0)))
            .count();
        let refuted = self
            .diagnostics
            .iter()
            .filter(|d| d.code == "EDS030")
            .count();
        format!(
            "{} rules: {proved} proved, {fuzzed} fuzz-covered, {uncovered} uncovered, {refuted} refuted",
            self.coverage.len()
        )
    }
}

/// How one executed fuzz case went.
enum CaseOutcome {
    /// Rewritten and original agree.
    Pass,
    /// They differ (or the rewrite broke executability) — `detail` says how.
    Fail(String),
    /// The rule did not fire on this subject.
    NotApplicable,
    /// The case could not be executed (e.g. the generated world is
    /// malformed for the engine); it counts for nobody.
    Skip,
}

fn build_db(case: &FuzzCase) -> Option<Database> {
    let mut db = Database::new();
    for (spec, rows) in case.tables.iter().zip(&case.rows) {
        let cols = (1..=spec.arity)
            .map(|i| format!("C{i} : INT"))
            .collect::<Vec<_>>()
            .join(", ");
        db.execute_ddl(&format!("TABLE {} ({cols});", spec.name))
            .ok()?;
        for row in rows {
            db.insert(&spec.name, row.iter().map(|&v| v.into()).collect())
                .ok()?;
        }
    }
    Some(db)
}

fn eval_term(term: &Term, db: &Database) -> Result<Relation, String> {
    let expr = expr_from_term(term).map_err(|e| format!("not executable: {e}"))?;
    eval_reference(&expr, db, EvalOptions::default()).map_err(|e| format!("evaluation failed: {e}"))
}

/// Run one case: build the world, execute the subject, rewrite with only
/// `rule`, execute the result, compare multisets.
fn run_case(case: &FuzzCase, rule: &Rule, methods: &MethodRegistry) -> CaseOutcome {
    let Some(db) = build_db(case) else {
        return CaseOutcome::Skip;
    };
    let constraints = ConstraintStore::new();
    let env = CoreEnv {
        db: &db,
        constraints: &constraints,
    };
    let Ok(before) = eval_term(&case.subject, &db) else {
        // The generated world itself is not executable; nothing to compare.
        return CaseOutcome::Skip;
    };
    let mut stats = RewriteStats::default();
    let rewritten = match apply_rule_once(rule, &case.subject, methods, &env, &mut stats) {
        Ok(Some((term, _))) => term,
        Ok(None) => return CaseOutcome::NotApplicable,
        // A method error at match time means the rule declined, not that
        // it rewrote wrongly.
        Err(_) => return CaseOutcome::Skip,
    };
    match eval_term(&rewritten, &db) {
        Ok(after) if after.bag_eq(&before) => CaseOutcome::Pass,
        Ok(after) => CaseOutcome::Fail(format!(
            "{} rows before vs {} after; rewritten to {rewritten}",
            before.rows.len(),
            after.rows.len()
        )),
        Err(e) => CaseOutcome::Fail(format!("rewrite broke executability ({e}): {rewritten}")),
    }
}

/// Shrink a failing case to a fixpoint, re-validating every candidate.
fn shrink(mut case: FuzzCase, rule: &Rule, methods: &MethodRegistry) -> FuzzCase {
    // The candidate set is finite and every accepted step removes a row,
    // shrinks the subject, or zeroes a constant, so this terminates; the
    // step cap is a belt-and-braces bound.
    for _ in 0..200 {
        let mut improved = None;
        for cand in fuzz::shrink_candidates(&case) {
            if matches!(run_case(&cand, rule, methods), CaseOutcome::Fail(_)) {
                improved = Some(cand);
                break;
            }
        }
        match improved {
            Some(c) if c.subject != case.subject || c.rows != case.rows => case = c,
            _ => break,
        }
    }
    case
}

/// Verify every rule in `rules`: prove what the bounded prover can,
/// differentially fuzz everything whose LHS shape the generator
/// understands, and report findings under EDS030–EDS032.
pub fn verify_rules<'a>(
    rules: impl IntoIterator<Item = &'a Rule>,
    methods: &MethodRegistry,
    opts: &VerifyOptions,
) -> VerifyReport {
    let mut report = VerifyReport::default();
    let prover_env = BasicEnv::new();
    for rule in rules {
        let mut proved = false;
        let mut prover_diag: Option<Diagnostic> = None;
        let mut unsupported_note: Option<Diagnostic> = None;
        if opts.prove {
            match equiv::check_rule(rule, methods, &prover_env) {
                equiv::Outcome::Proved { .. } => proved = true,
                equiv::Outcome::Refuted(d) | equiv::Outcome::Conditional(d) => {
                    prover_diag = Some(d);
                }
                equiv::Outcome::Unsupported(d) => unsupported_note = Some(d),
            }
        }

        let mut applied = 0usize;
        let mut fuzz_failure: Option<(FuzzCase, String)> = None;
        let mut gen_unsupported: Option<String> = None;
        if opts.fuzz {
            let base = fuzz::rule_seed(opts.seed, &rule.name);
            for i in 0..opts.cases_per_rule {
                let seed = base.wrapping_add(i as u64);
                let case = match fuzz::generate_case(rule, seed) {
                    GenOutcome::Case(case) => *case,
                    GenOutcome::Unsupported(reason) => {
                        gen_unsupported = Some(reason);
                        break;
                    }
                };
                match run_case(&case, rule, methods) {
                    CaseOutcome::Fail(detail) => {
                        let minimal = shrink(case, rule, methods);
                        let detail = match run_case(&minimal, rule, methods) {
                            CaseOutcome::Fail(d) => d,
                            _ => detail,
                        };
                        fuzz_failure = Some((minimal, detail));
                        break;
                    }
                    CaseOutcome::Pass => applied += 1,
                    CaseOutcome::NotApplicable | CaseOutcome::Skip => {}
                }
            }
        }

        // Compose the verdict for this rule.
        if let Some((minimal, detail)) = fuzz_failure {
            report.diagnostics.push(eds_rewrite::verify::refuted(
                &rule.name,
                &format!(
                    "differential fuzzing (seed {}): {detail}; minimal case: {minimal}",
                    minimal.seed
                ),
            ));
            report.counterexamples.push((rule.name.clone(), minimal));
            report
                .coverage
                .push((rule.name.clone(), Coverage::Fuzzed(applied)));
            // A prover refutation of the same rule is still worth
            // reporting alongside.
            if let Some(d) = prover_diag {
                report.diagnostics.push(d);
            }
            continue;
        }
        if proved {
            report.coverage.push((rule.name.clone(), Coverage::Proved));
            continue;
        }
        if let Some(d) = prover_diag {
            report.diagnostics.push(d);
            report
                .coverage
                .push((rule.name.clone(), Coverage::Fuzzed(applied)));
            continue;
        }
        // Not provable: fuzz-only coverage, with an honest note about
        // how much the fuzzer actually exercised.
        let coverage = if opts.fuzz {
            Coverage::Fuzzed(applied)
        } else {
            Coverage::None
        };
        report.coverage.push((rule.name.clone(), coverage));
        if let Some(mut note) = unsupported_note {
            if let Some(reason) = gen_unsupported {
                note.message.push_str(&format!(
                    " — and the fuzz generator declined it too ({reason})"
                ));
            } else if opts.fuzz {
                note.message.push_str(&format!(
                    " — fuzzed: the rule fired in {applied}/{} generated cases",
                    opts.cases_per_rule
                ));
            }
            report.diagnostics.push(note);
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use eds_rewrite::{parse_source, SourceItem};

    fn test_registry() -> MethodRegistry {
        let mut methods = MethodRegistry::with_builtins();
        crate::methods::register_core_methods(&mut methods);
        methods
    }

    fn rule(src: &str) -> Rule {
        match parse_source(src).unwrap().remove(0) {
            SourceItem::Rule(r) => r,
            other => panic!("expected a rule, got {other:?}"),
        }
    }

    #[test]
    fn sound_merge_rule_passes_fuzzing() {
        let r = rule("Merge : FILTER(FILTER(r, p), q) / --> FILTER(r, AND(p, q)) / ;");
        let methods = test_registry();
        let report = verify_rules([&r], &methods, &VerifyOptions::default());
        assert!(!report.has_errors(), "{:?}", report.diagnostics);
        let (_, Coverage::Fuzzed(n)) = &report.coverage[0] else {
            panic!("expected fuzz coverage, got {:?}", report.coverage);
        };
        assert!(*n > 0, "fuzzer never exercised the rule");
    }

    #[test]
    fn swapped_filter_drop_is_caught_and_shrunk() {
        // Unsound: drops the outer filter entirely.
        let r = rule("Drop : FILTER(FILTER(r, p), q) / --> FILTER(r, p) / ;");
        let methods = test_registry();
        let report = verify_rules(
            [&r],
            &methods,
            &VerifyOptions {
                prove: false,
                ..VerifyOptions::default()
            },
        );
        assert!(report.has_errors());
        let (_, minimal) = &report.counterexamples[0];
        // Shrinking keeps the failing property while only removing rows /
        // simplifying the subject.
        assert!(matches!(
            run_case(minimal, &r, &methods),
            CaseOutcome::Fail(_)
        ));
    }
}
