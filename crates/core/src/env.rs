//! The rewriting environment: adapts a [`Database`] (catalog, objects,
//! functions) plus the declared integrity constraints to the
//! [`TermEnv`] interface the rule engine consumes.

use eds_adt::{FunctionRegistry, ObjectStore, Type, TypeRegistry};
use eds_engine::Database;
use eds_lera::{expr_from_term, infer_schema, SchemaCtx};
use eds_rewrite::{Term, TermEnv};

use crate::semantic::ConstraintStore;

/// Environment for one rewrite session.
pub struct CoreEnv<'a> {
    /// The database providing schemas, objects and functions.
    pub db: &'a Database,
    /// The declared integrity constraints.
    pub constraints: &'a ConstraintStore,
}

impl TermEnv for CoreEnv<'_> {
    fn functions(&self) -> &FunctionRegistry {
        &self.db.functions
    }

    fn objects(&self) -> &ObjectStore {
        &self.db.objects
    }

    fn types(&self) -> &TypeRegistry {
        &self.db.catalog.types
    }

    fn rel_schema(&self, term: &Term) -> Option<Vec<Type>> {
        let expr = expr_from_term(term).ok()?;
        let ctx = SchemaCtx::new(&self.db.catalog);
        let schema = infer_schema(&expr, &ctx).ok()?;
        Some(schema.fields.into_iter().map(|f| f.ty).collect())
    }

    fn constraints_for(&self, ty: &Type) -> Vec<Term> {
        self.constraints.templates_for(ty, &self.db.catalog.types)
    }
}
