//! Optimization levels: `None` skips rewriting for trivial statements,
//! `Simple` is the default saturation, `Full` adds cost-guided candidate
//! exploration — and every level returns the same rows.

use eds_adt::Value;
use eds_core::{Dbms, OptLevel};

fn setup() -> Dbms {
    let mut dbms = Dbms::new().unwrap();
    dbms.execute_ddl(
        "TABLE R (K : INT, A : INT);\n\
         TABLE S (K : INT, J : INT);",
    )
    .unwrap();
    for i in 0..40i64 {
        dbms.insert("R", vec![Value::Int(i % 8), Value::Int(i)])
            .unwrap();
        dbms.insert("S", vec![Value::Int(i % 8), Value::Int(i % 5)])
            .unwrap();
    }
    dbms
}

const JOIN_SQL: &str = "SELECT R.A FROM R, S WHERE R.K = S.K AND S.J = 2;";

#[test]
fn none_skips_rewriting_trivial_scans_only() {
    let mut dbms = setup();
    dbms.set_opt_level(OptLevel::None);

    // A point scan is handed to the executor as translated.
    let scan = dbms.prepare("SELECT A FROM R WHERE K = 3;").unwrap();
    let out = dbms.rewrite(&scan).unwrap();
    assert_eq!(out.stats.applications, 0);
    assert_eq!(out.stats.condition_checks, 0);
    assert_eq!(out.expr, scan.expr);

    // Anything structural falls back to Simple rewriting.
    let join = dbms.prepare(JOIN_SQL).unwrap();
    let out = dbms.rewrite(&join).unwrap();
    assert!(out.stats.condition_checks > 0);

    // And the rows are identical to the Simple level's either way.
    let none_rows = dbms.query(JOIN_SQL).unwrap().sorted_rows();
    dbms.set_opt_level(OptLevel::Simple);
    let simple_rows = dbms.query(JOIN_SQL).unwrap().sorted_rows();
    assert_eq!(none_rows, simple_rows);
}

#[test]
fn full_reports_exploration_and_matches_simple_rows() {
    let mut dbms = setup();
    dbms.set_opt_level(OptLevel::Simple);
    let simple_rows = dbms.query(JOIN_SQL).unwrap().sorted_rows();

    dbms.set_opt_level(OptLevel::Full);
    let full_rows = dbms.query(JOIN_SQL).unwrap().sorted_rows();
    assert_eq!(full_rows, simple_rows);

    let out = dbms.rewrite(&dbms.prepare(JOIN_SQL).unwrap()).unwrap();
    let ex = out
        .exploration
        .expect("Full reports an exploration summary");
    assert!(ex.considered >= 1);
    assert!(ex.chosen_cost.is_finite());
    let cumulative = dbms.rewriter.explore_stats();
    assert!(cumulative.candidates >= ex.considered);
}

#[test]
fn plan_cache_is_level_keyed() {
    let mut dbms = setup();
    let prepared = dbms.prepare(JOIN_SQL).unwrap();

    dbms.set_opt_level(OptLevel::Simple);
    dbms.rewrite(&prepared).unwrap();
    let after_simple = dbms.rewriter.plan_cache_stats();

    // Full must not be answered from the Simple entry.
    dbms.set_opt_level(OptLevel::Full);
    dbms.rewrite(&prepared).unwrap();
    let after_full = dbms.rewriter.plan_cache_stats();
    assert_eq!(after_full.misses, after_simple.misses + 1);
    assert_eq!(after_full.hits, after_simple.hits);

    // Repeating each level hits its own entry.
    dbms.rewrite(&prepared).unwrap();
    dbms.set_opt_level(OptLevel::Simple);
    dbms.rewrite(&prepared).unwrap();
    let warm = dbms.rewriter.plan_cache_stats();
    assert_eq!(warm.misses, after_full.misses);
    assert_eq!(warm.hits, after_simple.hits + 2);
}

#[test]
fn prepared_statements_record_their_level() {
    let mut dbms = setup();
    dbms.set_opt_level(OptLevel::Full);
    let stmt = dbms.prepare_stmt("SELECT A FROM R WHERE K = ?;").unwrap();
    assert_eq!(stmt.opt_level(), OptLevel::Full);

    // The statement keeps its level even after the DBMS switches.
    dbms.set_opt_level(OptLevel::Simple);
    let rows = stmt.execute(&dbms, &[Value::Int(3)]).unwrap();
    assert_eq!(stmt.opt_level(), OptLevel::Full);
    assert!(!rows.is_empty());
}

#[test]
fn explain_shows_level_and_exploration() {
    let mut dbms = setup();
    dbms.set_opt_level(OptLevel::Full);
    let text = dbms.explain(JOIN_SQL).unwrap();
    assert!(text.contains("opt level: full"), "missing level: {text}");
    assert!(
        text.contains("considered") && text.contains("candidates"),
        "missing exploration summary: {text}"
    );

    dbms.set_opt_level(OptLevel::Simple);
    let text = dbms.explain(JOIN_SQL).unwrap();
    assert!(text.contains("opt level: simple"));
    assert!(!text.contains("considered"));
}

#[test]
fn opt_level_parses_env_spellings() {
    assert_eq!(OptLevel::parse("none"), Some(OptLevel::None));
    assert_eq!(OptLevel::parse("0"), Some(OptLevel::None));
    assert_eq!(OptLevel::parse("Simple"), Some(OptLevel::Simple));
    assert_eq!(OptLevel::parse("1"), Some(OptLevel::Simple));
    assert_eq!(OptLevel::parse("FULL"), Some(OptLevel::Full));
    assert_eq!(OptLevel::parse("2"), Some(OptLevel::Full));
    assert_eq!(OptLevel::parse("max"), None);
}
