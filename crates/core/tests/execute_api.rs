//! The `Dbms::execute` mixed-statement API (what the shell uses).

use eds_adt::Value;
use eds_core::{Dbms, Executed};

#[test]
fn mixed_script_executes_in_order() {
    let mut dbms = Dbms::new().unwrap();
    let results = dbms
        .execute(
            "TABLE T (X : INT, Tags : SET OF CHAR);
             INSERT INTO T VALUES (1, MakeSet('a', 'b')), (2, MakeSet('b'));
             SELECT X FROM T WHERE MEMBER('a', Tags);",
        )
        .unwrap();
    assert_eq!(results.len(), 3);
    assert!(matches!(results[0], Executed::Ddl));
    assert!(matches!(results[1], Executed::Inserted(2)));
    let Executed::Rows(rel) = &results[2] else {
        panic!("expected rows")
    };
    assert_eq!(rel.sorted_rows(), vec![vec![Value::Int(1)]]);
}

#[test]
fn execute_runs_queries_through_the_rewriter() {
    let mut dbms = Dbms::new().unwrap();
    dbms.execute(
        "TABLE T (X : INT);
         INSERT INTO T VALUES (1), (2), (3);",
    )
    .unwrap();
    // A contradictory query: the rewriter collapses it; execute returns
    // the empty relation rather than scanning.
    let results = dbms
        .execute("SELECT X FROM T WHERE X = 1 AND X = 2;")
        .unwrap();
    let Executed::Rows(rel) = &results[0] else {
        panic!()
    };
    assert!(rel.is_empty());
}

#[test]
fn execute_surfaces_errors_per_script() {
    let mut dbms = Dbms::new().unwrap();
    // Unknown table in the insert: the whole script errors cleanly.
    assert!(dbms.execute("INSERT INTO NOPE VALUES (1);").is_err());
    // Partial scripts do not corrupt the catalog.
    dbms.execute("TABLE T (X : INT);").unwrap();
    assert!(dbms.execute("SELECT X FROM T;").is_ok());
}

#[test]
fn insert_values_are_constant_folded() {
    let mut dbms = Dbms::new().unwrap();
    dbms.execute("TABLE T (X : INT);").unwrap();
    dbms.execute("INSERT INTO T VALUES (2 + 3 * 4);").unwrap();
    let rel = dbms.query("SELECT X FROM T;").unwrap();
    assert_eq!(rel.sorted_rows(), vec![vec![Value::Int(14)]]);
}

#[test]
fn insert_rejects_non_constant_values() {
    let mut dbms = Dbms::new().unwrap();
    dbms.execute("TABLE T (X : INT);").unwrap();
    // Column references are meaningless in VALUES.
    assert!(dbms.execute("INSERT INTO T VALUES (Y);").is_err());
}
