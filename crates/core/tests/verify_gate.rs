//! The `eds-verify` gate: the builtin knowledge base must verify clean
//! at deny (no EDS030 refutation), and an injected unsound rule must be
//! caught by BOTH instruments — the bounded equivalence prover (with a
//! counterexample valuation) and the differential fuzzer (with a shrunk,
//! seed-replayable counterexample).

use eds_core::rewrite::{parse_source, MethodRegistry, Rule, SourceItem};
use eds_core::{verify_rules, Coverage, Dbms, VerifyOptions};

fn parse_rule(src: &str) -> Rule {
    match parse_source(src).unwrap().remove(0) {
        SourceItem::Rule(r) => r,
        other => panic!("expected a rule, got {other:?}"),
    }
}

fn core_registry() -> MethodRegistry {
    let mut methods = MethodRegistry::with_builtins();
    eds_core::methods::register_core_methods(&mut methods);
    methods
}

#[test]
fn builtin_kb_verifies_clean_at_deny() {
    let dbms = Dbms::new().unwrap();
    let report = dbms.verify();
    let errors: Vec<_> = report.diagnostics.iter().filter(|d| d.is_error()).collect();
    assert!(errors.is_empty(), "builtin KB refuted: {errors:#?}");
    // The boolean core of the KB is outright proved, not just fuzzed.
    // This includes the contradiction-collapse rules: their NOTNULL
    // guards exclude the NULL valuations that used to make them
    // 2-valued-sound only, so the prover certifies them instead of
    // reporting an inexpressible side condition.
    let proved: Vec<&str> = report.proved().collect();
    for name in [
        "DeMorganAnd",
        "DeMorganOr",
        "NotNot",
        "AndTrue",
        "TrueAnd",
        "OrFalse",
        "NotGt",
        "DiffZeroIsEq",
        "GtLeContradiction",
        "LtGeContradiction",
    ] {
        assert!(
            proved.contains(&name),
            "expected {name} proved; proved = {proved:?}"
        );
    }
    // With the guards in place no builtin rule needs a side condition
    // the prover cannot discharge.
    let eds032: Vec<_> = report
        .diagnostics
        .iter()
        .filter(|d| d.code == "EDS032")
        .collect();
    assert!(eds032.is_empty(), "unexpected EDS032: {eds032:#?}");
}

#[test]
fn relational_builtins_get_differential_coverage() {
    let dbms = Dbms::new().unwrap();
    let report = dbms.verify();
    // Rules outside the provable fragment must actually fire under
    // fuzzing — coverage, not just absence of findings. This includes
    // the shapes the generator learned late: variable UNION collections
    // (UnionMerge), NEST inputs with a pushable group qualification
    // (SearchNestPush), linear recursion reducible by ADORNMENT/
    // ALEXANDER (FixpointPush), scalar-rooted arithmetic folds, and
    // MEMBER over literal sets.
    for name in [
        "FilterFilterMerge",
        "DedupDedup",
        "UnionMerge",
        "SearchNestPush",
        "FixpointPush",
        "PlusFold",
        "MinusFold",
        "NeFold",
        "GeFold",
        "MemberFold",
    ] {
        let cov = report
            .coverage
            .iter()
            .find(|(r, _)| r == name)
            .map(|(_, c)| *c);
        assert!(
            matches!(cov, Some(Coverage::Fuzzed(n)) if n > 0),
            "expected fuzz coverage for {name}, got {cov:?}"
        );
    }
}

#[test]
fn coverage_gap_is_pinned_to_the_constraint_store_rules() {
    let dbms = Dbms::new().unwrap();
    let report = dbms.verify();
    // The only builtin rules with zero semantic coverage are the
    // Section-5 semantic-rewriting rules whose firing depends on a
    // constraint store the differential harness does not model. Anything
    // new showing up here means a generator regression.
    let mut uncovered: Vec<&str> = report
        .coverage
        .iter()
        .filter(|(_, c)| matches!(c, Coverage::None | Coverage::Fuzzed(0)))
        .map(|(r, _)| r.as_str())
        .collect();
    uncovered.sort_unstable();
    assert_eq!(
        uncovered,
        vec![
            "AddConstraints",
            "AddConstraintsF",
            "EqSubst",
            "SimplifyQual",
            "Transitivity",
        ],
        "uncovered set drifted"
    );
}

#[test]
fn injected_unsound_rule_is_refuted_by_the_prover() {
    // DeMorgan with a dropped negation: NOT(f AND g) --> NOT(f) OR g.
    let bad = parse_rule("BadDeMorgan : NOT(f AND g) / --> NOT(f) OR g / ;");
    let methods = core_registry();
    let report = verify_rules(
        [&bad],
        &methods,
        &VerifyOptions {
            fuzz: false,
            ..VerifyOptions::default()
        },
    );
    assert!(report.has_errors());
    let d = report
        .diagnostics
        .iter()
        .find(|d| d.code == "EDS030")
        .expect("EDS030 refutation");
    assert_eq!(d.rule.as_deref(), Some("BadDeMorgan"));
    // The counterexample valuation is attached and NULL-free.
    assert!(d.message.contains("f = TRUE"), "{}", d.message);
    assert!(d.message.contains("g = TRUE"), "{}", d.message);
    assert!(!d.message.contains("UNKNOWN"), "{}", d.message);
}

#[test]
fn injected_unsound_rule_is_caught_by_the_fuzzer_and_shrunk() {
    let bad = parse_rule("BadDeMorgan : NOT(f AND g) / --> NOT(f) OR g / ;");
    let methods = core_registry();
    let opts = VerifyOptions {
        prove: false,
        ..VerifyOptions::default()
    };
    let report = verify_rules([&bad], &methods, &opts);
    assert!(report.has_errors(), "{:#?}", report.diagnostics);
    let (rule, minimal) = &report.counterexamples[0];
    assert_eq!(rule, "BadDeMorgan");
    // The diagnostic names the seed for one-command local replay.
    let d = report
        .diagnostics
        .iter()
        .find(|d| d.code == "EDS030")
        .expect("EDS030");
    assert!(
        d.message.contains(&format!("seed {}", minimal.seed)),
        "{}",
        d.message
    );
    // Shrinking reached a genuinely small world.
    let total_rows: usize = minimal.rows.iter().map(Vec::len).sum();
    assert!(total_rows <= 2, "not shrunk: {minimal}");
    // Replay: the same options reproduce the identical minimal case.
    let replay = verify_rules([&bad], &methods, &opts);
    let (_, again) = &replay.counterexamples[0];
    assert_eq!(again.subject, minimal.subject);
    assert_eq!(again.rows, minimal.rows);
    assert_eq!(again.seed, minimal.seed);
}

#[test]
fn example_custom_rules_verify_without_refutation() {
    let src = std::fs::read_to_string(
        std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../examples/custom_rules.rules"),
    )
    .expect("examples/custom_rules.rules");
    let methods = core_registry();
    let rules: Vec<Rule> = parse_source(&src)
        .unwrap()
        .into_iter()
        .filter_map(|item| match item {
            SourceItem::Rule(r) => Some(r),
            _ => None,
        })
        .collect();
    let report = verify_rules(rules.iter(), &methods, &VerifyOptions::default());
    assert!(
        !report.has_errors(),
        "example rules refuted: {:#?}",
        report.diagnostics
    );
}
