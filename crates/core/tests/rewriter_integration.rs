//! End-to-end rewriter tests: every paper figure's optimization, driven
//! through the full parse → translate → rewrite → execute pipeline.

use eds_adt::Value;
use eds_core::{figure10_constraints, Dbms};
use eds_lera::Expr;
use eds_rewrite::Limit;

/// The paper's Figure-2 film schema plus a small population.
fn film_dbms() -> Dbms {
    let mut dbms = Dbms::new().unwrap();
    dbms.execute_ddl(
        "TYPE Category ENUMERATION OF ('Comedy', 'Adventure', 'Science Fiction', 'Western') ;
         TYPE Point TUPLE (ABS : REAL, ORD : REAL) ;
         TYPE Person OBJECT TUPLE ( Name : CHAR, Firstname : SET OF CHAR) ;
         TYPE Actor SUBTYPE OF Person OBJECT TUPLE (Salary : NUMERIC) ;
         TYPE SetCategory SET OF Category ;
         TABLE FILM ( Numf : NUMERIC, Title : CHAR, Categories : SetCategory) ;
         TABLE APPEARS_IN ( Numf : NUMERIC, Refactor : Actor) ;
         TABLE DOMINATE ( Numf : NUMERIC, Refactor1 : Actor, Refactor2 : Actor) ;",
    )
    .unwrap();

    let actor = |dbms: &mut Dbms, name: &str, salary: i64| {
        dbms.create_object(
            "Actor",
            Value::Tuple(vec![
                Value::str(name),
                Value::set(vec![]),
                Value::Int(salary),
            ]),
        )
    };
    let quinn = actor(&mut dbms, "Quinn", 12_000);
    let marla = actor(&mut dbms, "Marla", 20_000);
    let pedro = actor(&mut dbms, "Pedro", 8_000);

    dbms.insert_all(
        "FILM",
        vec![
            vec![
                Value::Int(1),
                Value::str("Desert Run"),
                Value::set(vec![Value::str("Adventure"), Value::str("Western")]),
            ],
            vec![
                Value::Int(2),
                Value::str("Laugh Lines"),
                Value::set(vec![Value::str("Comedy")]),
            ],
            vec![
                Value::Int(3),
                Value::str("Star Cargo"),
                Value::set(vec![Value::str("Science Fiction"), Value::str("Adventure")]),
            ],
        ],
    )
    .unwrap();
    dbms.insert_all(
        "APPEARS_IN",
        vec![
            vec![Value::Int(1), quinn.clone()],
            vec![Value::Int(1), marla.clone()],
            vec![Value::Int(2), quinn.clone()],
            vec![Value::Int(3), marla.clone()],
            vec![Value::Int(3), pedro.clone()],
        ],
    )
    .unwrap();
    dbms.insert_all(
        "DOMINATE",
        vec![
            vec![Value::Int(1), marla.clone(), quinn.clone()],
            vec![Value::Int(1), quinn.clone(), pedro.clone()],
        ],
    )
    .unwrap();
    dbms
}

/// Rewriting must never change query results.
fn assert_equivalent(dbms: &Dbms, sql: &str) {
    let baseline = dbms.query_unoptimized(sql).unwrap();
    let optimized = dbms.query(sql).unwrap();
    assert!(
        baseline.set_eq(&optimized),
        "rewrite changed results of {sql}\nbaseline: {:?}\noptimized: {:?}",
        baseline.sorted_rows(),
        optimized.sorted_rows()
    );
}

#[test]
fn figure7_view_composition_merges_to_single_search() {
    let mut dbms = film_dbms();
    dbms.execute_ddl(
        "CREATE VIEW Adventure (Numf, Title) AS \
         SELECT Numf, Title FROM FILM WHERE MEMBER('Adventure', Categories) ;",
    )
    .unwrap();
    let sql = "SELECT Title FROM Adventure WHERE Numf = 3 ;";
    let prepared = dbms.prepare(sql).unwrap();
    // Canonical plan: search over search (the inlined view).
    let Expr::Search { inputs, .. } = &prepared.expr else {
        panic!("expected search")
    };
    assert!(matches!(&inputs[0], Expr::Search { .. }));

    let rewritten = dbms.rewrite(&prepared).unwrap();
    // After merging: a single search over the base table with the two
    // qualifications ANDed.
    let Expr::Search { inputs, pred, .. } = &rewritten.expr else {
        panic!("expected search, got {}", rewritten.expr.op_name())
    };
    assert_eq!(inputs.len(), 1);
    assert!(matches!(&inputs[0], Expr::Base(n) if n == "FILM"));
    let rendered = pred.to_string();
    assert!(rendered.contains("MEMBER"), "{rendered}");
    assert!(rendered.contains("1.1 = 3"), "{rendered}");

    assert_equivalent(&dbms, sql);
    assert_eq!(
        dbms.query(sql).unwrap().sorted_rows(),
        vec![vec![Value::str("Star Cargo")]]
    );
}

#[test]
fn figure7_deep_view_stack_fully_merges() {
    let mut dbms = film_dbms();
    dbms.execute_ddl(
        "CREATE VIEW V1 (Numf, Title, Categories) AS \
           SELECT Numf, Title, Categories FROM FILM WHERE Numf > 0 ;\n\
         CREATE VIEW V2 (Numf, Title) AS \
           SELECT Numf, Title FROM V1 WHERE MEMBER('Adventure', Categories) ;\n\
         CREATE VIEW V3 (Title) AS SELECT Title FROM V2 WHERE Numf < 10 ;",
    )
    .unwrap();
    let sql = "SELECT Title FROM V3 ;";
    let prepared = dbms.prepare(sql).unwrap();
    assert!(prepared.expr.node_count() >= 4);
    let rewritten = dbms.rewrite(&prepared).unwrap();
    let Expr::Search { inputs, .. } = &rewritten.expr else {
        panic!("expected search")
    };
    assert_eq!(inputs.len(), 1);
    assert!(matches!(&inputs[0], Expr::Base(n) if n == "FILM"));
    assert_equivalent(&dbms, sql);
}

#[test]
fn figure8_union_pushdown_distributes_search() {
    let mut dbms = film_dbms();
    dbms.execute_ddl(
        "CREATE VIEW AllPairs (Numf, Refactor) AS \
         ( SELECT Numf, Refactor FROM APPEARS_IN \
           UNION SELECT Numf, Refactor1 FROM DOMINATE \
           UNION SELECT Numf, Refactor2 FROM DOMINATE ) ;",
    )
    .unwrap();
    let sql = "SELECT Numf FROM AllPairs WHERE Numf = 1 ;";
    let rewritten = dbms.rewrite(&dbms.prepare(sql).unwrap()).unwrap();
    // The search is distributed over the union branches and merged into
    // each: the top operator becomes a union of searches on base tables.
    let Expr::Union(items) = &rewritten.expr else {
        panic!("expected union on top, got {}", rewritten.expr.op_name())
    };
    assert_eq!(items.len(), 3);
    for item in items {
        let Expr::Search { inputs, .. } = item else {
            panic!("expected search branch, got {}", item.op_name())
        };
        assert!(matches!(&inputs[0], Expr::Base(_)));
    }
    assert_equivalent(&dbms, sql);
}

#[test]
fn figure8_nest_pushdown_moves_group_predicate_below_nest() {
    let mut dbms = film_dbms();
    dbms.execute_ddl(
        "CREATE VIEW FilmActors (Title, Categories, Actors) AS \
         SELECT Title, Categories, MakeSet(Refactor) \
         FROM FILM, APPEARS_IN WHERE FILM.Numf = APPEARS_IN.Numf \
         GROUP BY Title, Categories ;",
    )
    .unwrap();
    let sql = "SELECT Title FROM FilmActors WHERE Title = 'Desert Run' ;";
    let prepared = dbms.prepare(sql).unwrap();
    let rewritten = dbms.rewrite(&prepared).unwrap();
    // The Title predicate must sit below the nest after rewriting.
    fn nest_input_has_filter(e: &Expr) -> bool {
        match e {
            Expr::Nest { input, .. } => {
                let rendered = format!("{input}");
                rendered.contains("'Desert Run'")
            }
            _ => e.children().iter().any(|c| nest_input_has_filter(c)),
        }
    }
    assert!(
        nest_input_has_filter(&rewritten.expr),
        "predicate not pushed below nest: {}",
        rewritten.expr
    );
    // And the outer search must no longer carry it.
    let Expr::Search { pred, .. } = &rewritten.expr else {
        panic!("expected search")
    };
    assert!(!pred.to_string().contains("Desert Run"));
    assert_equivalent(&dbms, sql);
    assert_eq!(dbms.query(sql).unwrap().len(), 1);
}

#[test]
fn figure9_alexander_reduces_recursion_and_work() {
    let mut dbms = film_dbms();
    dbms.execute_ddl(
        "CREATE VIEW BETTER_THAN (Refactor1, Refactor2) AS \
         ( SELECT Refactor1, Refactor2 FROM DOMINATE \
           UNION \
           SELECT B1.Refactor1, B2.Refactor2 \
           FROM BETTER_THAN B1, BETTER_THAN B2 \
           WHERE B1.Refactor2 = B2.Refactor1 ) ;",
    )
    .unwrap();
    let sql = "SELECT Name(Refactor1) FROM BETTER_THAN WHERE Name(Refactor2) = 'Quinn' ;";
    // NOTE: the binding here is Name(Refactor2) = 'Quinn' — a *function*
    // of the attribute, which the adornment cannot use. Use a direct
    // object binding instead for the reduction test below; this query
    // still must stay correct.
    assert_equivalent(&dbms, sql);

    // Direct binding on a fixpoint attribute: build a graph table.
    let mut dbms = Dbms::new().unwrap();
    dbms.execute_ddl(
        "TABLE EDGE (Src : INT, Dst : INT);\n\
         CREATE VIEW TC (Src, Dst) AS \
         ( SELECT Src, Dst FROM EDGE \
           UNION SELECT T1.Src, T2.Dst FROM TC T1, TC T2 WHERE T1.Dst = T2.Src ) ;",
    )
    .unwrap();
    for i in 0..30i64 {
        dbms.insert("EDGE", vec![i.into(), (i + 1).into()]).unwrap();
    }
    let sql = "SELECT Dst FROM TC WHERE Src = 28 ;";
    let prepared = dbms.prepare(sql).unwrap();
    let rewritten = dbms.rewrite(&prepared).unwrap();

    // The rewritten plan's fixpoint seed must carry the binding (the
    // seed restriction merges into the seed search itself).
    let rendered = format!("{}", rewritten.expr);
    assert!(
        rendered.contains("search((EDGE), [1.1 = 28]"),
        "seed not restricted in {rendered}"
    );

    let (base_rel, base_stats) = dbms.run_expr_with_stats(&prepared.expr).unwrap();
    let (opt_rel, opt_stats) = dbms.run_expr_with_stats(&rewritten.expr).unwrap();
    assert!(base_rel.set_eq(&opt_rel));
    assert_eq!(opt_rel.sorted_rows().len(), 2); // 29, 30
    assert!(
        opt_stats.combinations_tried * 10 < base_stats.combinations_tried,
        "expected >=10x reduction: optimized {} vs baseline {}",
        opt_stats.combinations_tried,
        base_stats.combinations_tried
    );
}

#[test]
fn figure10_inconsistent_member_detected() {
    // MEMBER('Cartoon', Categories) with the Category domain constraint:
    // the added domain knowledge folds to FALSE and the query returns
    // empty without scanning.
    let mut dbms = film_dbms();
    dbms.add_constraint_source(figure10_constraints()).unwrap();

    let sql =
        "SELECT Title FROM FILM WHERE Categories = Categories AND MEMBER('Cartoon', Categories) ;";
    // Constant-level inconsistency: MEMBER('Cartoon', {'Comedy',...}).
    let direct =
        "SELECT Title FROM FILM WHERE MEMBER('Cartoon', MAKESET('Comedy', 'Adventure', 'Science Fiction', 'Western')) ;";
    let rewritten = dbms.rewrite(&dbms.prepare(direct).unwrap()).unwrap();
    let Expr::Search { pred, .. } = &rewritten.expr else {
        panic!("expected search")
    };
    assert!(pred.is_false(), "expected FALSE qualification, got {pred}");
    assert!(dbms.query(direct).unwrap().is_empty());
    assert_equivalent(&dbms, sql);
}

#[test]
fn figure11_equality_substitution_enables_folding() {
    let mut dbms = Dbms::new().unwrap();
    dbms.execute_ddl("TABLE T (X : INT, Y : INT);").unwrap();
    dbms.insert_all(
        "T",
        (0..20i64)
            .map(|i| vec![Value::Int(i), Value::Int(i * 2)])
            .collect::<Vec<_>>(),
    )
    .unwrap();
    // X = 5 AND X > 9 is inconsistent: EQSUBST derives 5 > 9, folding
    // collapses the qualification to FALSE.
    let sql = "SELECT Y FROM T WHERE X = 5 AND X > 9 ;";
    let rewritten = dbms.rewrite(&dbms.prepare(sql).unwrap()).unwrap();
    let Expr::Search { pred, .. } = &rewritten.expr else {
        panic!("expected search")
    };
    assert!(pred.is_false(), "expected FALSE, got {pred}");
    assert!(dbms.query(sql).unwrap().is_empty());
}

#[test]
fn figure11_transitivity_derives_join_predicates() {
    let mut dbms = Dbms::new().unwrap();
    dbms.execute_ddl("TABLE A (X : INT); TABLE B (X : INT); TABLE C (X : INT);")
        .unwrap();
    for i in 0..5i64 {
        dbms.insert("A", vec![i.into()]).unwrap();
        dbms.insert("B", vec![i.into()]).unwrap();
        dbms.insert("C", vec![i.into()]).unwrap();
    }
    let sql = "SELECT A.X FROM A, B, C WHERE A.X = B.X AND B.X = C.X ;";
    let rewritten = dbms.rewrite(&dbms.prepare(sql).unwrap()).unwrap();
    let Expr::Search { pred, .. } = &rewritten.expr else {
        panic!("expected search")
    };
    // 1.1 = 3.1 derived by transitivity.
    assert!(
        pred.to_string().contains("1.1 = 3.1"),
        "transitivity missing in {pred}"
    );
    assert_equivalent(&dbms, sql);
}

#[test]
fn figure12_constant_folding_in_qualifications() {
    let mut dbms = Dbms::new().unwrap();
    dbms.execute_ddl("TABLE T (X : INT);").unwrap();
    dbms.insert_all(
        "T",
        (0..10i64).map(|i| vec![Value::Int(i)]).collect::<Vec<_>>(),
    )
    .unwrap();
    // 2 + 3 folds to 5; X < 5 remains.
    let sql = "SELECT X FROM T WHERE X < 2 + 3 ;";
    let rewritten = dbms.rewrite(&dbms.prepare(sql).unwrap()).unwrap();
    let Expr::Search { pred, .. } = &rewritten.expr else {
        panic!()
    };
    assert_eq!(pred.to_string(), "1.1 < 5");
    assert_eq!(dbms.query(sql).unwrap().sorted_rows().len(), 5);
}

#[test]
fn figure12_contradictory_comparisons_collapse() {
    let mut dbms = Dbms::new().unwrap();
    dbms.execute_ddl("TABLE T (X : INT, Y : INT);").unwrap();
    dbms.insert("T", vec![1.into(), 2.into()]).unwrap();
    let sql = "SELECT X FROM T WHERE X > Y AND X <= Y ;";
    let rewritten = dbms.rewrite(&dbms.prepare(sql).unwrap()).unwrap();
    let Expr::Search { pred, .. } = &rewritten.expr else {
        panic!()
    };
    assert!(pred.is_false(), "expected FALSE, got {pred}");
}

#[test]
fn rewriter_is_extensible_with_user_rules() {
    let mut dbms = Dbms::new().unwrap();
    dbms.execute_ddl("TABLE T (X : INT);").unwrap();
    dbms.insert("T", vec![1.into()]).unwrap();
    // A user rule folding a made-up predicate: ALWAYSTRUE() --> TRUE,
    // placed in its own block appended to the sequence.
    dbms.add_rule_source(
        "UserAlwaysTrue : ALWAYSTRUE(x) / --> TRUE / ;\n\
         block(user, {UserAlwaysTrue}, INF) ;\n\
         seq((normalize, merging, user, simplify), 1) ;",
    )
    .unwrap();
    // Build a plan with the predicate via the term layer.
    let prepared = dbms.prepare("SELECT X FROM T WHERE X = X ;").unwrap();
    let Expr::Search { inputs, proj, .. } = &prepared.expr else {
        panic!()
    };
    let custom = Expr::Search {
        inputs: inputs.clone(),
        pred: eds_lera::Scalar::call("ALWAYSTRUE", vec![eds_lera::Scalar::attr(1, 1)]),
        proj: proj.clone(),
    };
    let rewritten = dbms
        .rewriter
        .rewrite(&custom, &dbms.db, &dbms.constraints)
        .unwrap();
    let Expr::Search { pred, .. } = &rewritten.expr else {
        panic!()
    };
    assert!(pred.is_true(), "user rule did not fire: {pred}");
}

#[test]
fn zero_limits_disable_all_rewriting() {
    let mut dbms = film_dbms();
    dbms.execute_ddl(
        "CREATE VIEW Adventure (Numf, Title) AS \
         SELECT Numf, Title FROM FILM WHERE MEMBER('Adventure', Categories) ;",
    )
    .unwrap();
    dbms.rewriter.set_all_limits(Limit::Finite(0));
    let prepared = dbms
        .prepare("SELECT Title FROM Adventure WHERE Numf = 3 ;")
        .unwrap();
    let rewritten = dbms.rewrite(&prepared).unwrap();
    assert_eq!(rewritten.expr, prepared.expr);
    assert_eq!(rewritten.stats.applications, 0);
}

#[test]
fn rewrite_preserves_results_across_query_corpus() {
    let mut dbms = film_dbms();
    dbms.execute_ddl(
        "CREATE VIEW FilmActors (Title, Categories, Actors) AS \
           SELECT Title, Categories, MakeSet(Refactor) \
           FROM FILM, APPEARS_IN WHERE FILM.Numf = APPEARS_IN.Numf \
           GROUP BY Title, Categories ;\n\
         CREATE VIEW Adventure (Numf, Title) AS \
           SELECT Numf, Title FROM FILM WHERE MEMBER('Adventure', Categories) ;\n\
         CREATE VIEW BETTER_THAN (Refactor1, Refactor2) AS \
         ( SELECT Refactor1, Refactor2 FROM DOMINATE \
           UNION \
           SELECT B1.Refactor1, B2.Refactor2 \
           FROM BETTER_THAN B1, BETTER_THAN B2 \
           WHERE B1.Refactor2 = B2.Refactor1 ) ;",
    )
    .unwrap();
    dbms.add_constraint_source(figure10_constraints()).unwrap();
    let corpus = [
        "SELECT Title FROM FILM ;",
        "SELECT Title, Categories, Salary(Refactor) FROM FILM, APPEARS_IN \
         WHERE FILM.Numf = APPEARS_IN.Numf AND Name(Refactor) = 'Quinn' \
         AND MEMBER('Adventure', Categories) ;",
        "SELECT Title FROM FilmActors \
         WHERE MEMBER('Adventure', Categories) AND ALL (Salary(Actors) > 10_000) ;",
        "SELECT Title FROM Adventure WHERE Numf = 1 ;",
        "SELECT Name(Refactor1) FROM BETTER_THAN WHERE Name(Refactor2) = 'Quinn' ;",
        "SELECT Name(Refactor2) FROM BETTER_THAN WHERE Name(Refactor1) = 'Marla' ;",
        "SELECT DISTINCT Numf FROM APPEARS_IN WHERE Numf > 1 ;",
        "SELECT Numf FROM FILM UNION SELECT Numf FROM APPEARS_IN ;",
        "SELECT X.Title FROM Adventure X, Adventure Y WHERE X.Numf = Y.Numf ;",
        "SELECT Title FROM FILM WHERE Numf IN (SELECT Numf FROM APPEARS_IN) ;",
        "SELECT Numf FROM APPEARS_IN WHERE Numf IN (SELECT Numf FROM Adventure) AND Numf > 0 ;",
    ];
    for sql in corpus {
        assert_equivalent(&dbms, sql);
    }
}

#[test]
fn alexander_seed_filter_merges_into_seed_search() {
    // After the Figure-9 reduction, the seed restriction produced as a
    // FILTER must be merged back into the seed search by
    // FilterSearchMerge (second merging pass of the default sequence).
    let mut dbms = Dbms::new().unwrap();
    dbms.execute_ddl(
        "TABLE EDGE (Src : INT, Dst : INT);\n\
         CREATE VIEW TC (Src, Dst) AS \
         ( SELECT Src, Dst FROM EDGE \
           UNION SELECT T1.Src, T2.Dst FROM TC T1, TC T2 WHERE T1.Dst = T2.Src ) ;",
    )
    .unwrap();
    for i in 0..10i64 {
        dbms.insert("EDGE", vec![i.into(), (i + 1).into()]).unwrap();
    }
    let prepared = dbms.prepare("SELECT Dst FROM TC WHERE Src = 4 ;").unwrap();
    let rewritten = dbms.rewrite(&prepared).unwrap();
    fn has_filter(e: &Expr) -> bool {
        matches!(e, Expr::Filter { .. }) || e.children().iter().any(|c| has_filter(c))
    }
    assert!(
        !has_filter(&rewritten.expr),
        "seed filter not merged: {}",
        rewritten.expr
    );
    assert_equivalent(&dbms, "SELECT Dst FROM TC WHERE Src = 4 ;");
}

#[test]
fn filter_fusion_and_having() {
    let mut dbms = film_dbms();
    dbms.execute_ddl(
        "CREATE VIEW FilmActors (Title, Categories, Actors) AS \
         SELECT Title, Categories, MakeSet(Refactor) \
         FROM FILM, APPEARS_IN WHERE FILM.Numf = APPEARS_IN.Numf \
         GROUP BY Title, Categories ;",
    )
    .unwrap();
    // HAVING over the nested view exercises Filter-over-Nest plans.
    let sql = "SELECT Title, MakeSet(Refactor) FROM FILM, APPEARS_IN \
               WHERE FILM.Numf = APPEARS_IN.Numf \
               GROUP BY Title HAVING Title <> 'Laugh Lines' ;";
    assert_equivalent(&dbms, sql);
    let rows = dbms.query(sql).unwrap();
    assert_eq!(rows.len(), 2);
}

#[test]
fn adaptive_limits_scale_with_query_complexity() {
    // Paper conclusion: dynamic limit allocation by query complexity.
    let mut dbms = Dbms::new().unwrap();
    dbms.execute_ddl(
        "TABLE T (X : INT);\n\
         CREATE VIEW V1 (X) AS SELECT X FROM T WHERE X > 0 ;\n\
         CREATE VIEW V2 (X) AS SELECT X FROM V1 WHERE X < 100 ;",
    )
    .unwrap();
    dbms.insert("T", vec![5.into()]).unwrap();

    // Trivial plan: a bare table scan gets limit 0 — untouched.
    let trivial = dbms.prepare("SELECT X FROM T ;").unwrap();
    dbms.rewriter.set_adaptive_limits(&trivial.expr, 4);
    let out = dbms.rewrite(&trivial).unwrap();
    assert_eq!(out.stats.condition_checks, 0);

    // Complex plan: enough budget to fully merge the view stack.
    let complex = dbms.prepare("SELECT X FROM V2 WHERE X = 5 ;").unwrap();
    dbms.rewriter.set_adaptive_limits(&complex.expr, 20);
    let out = dbms.rewrite(&complex).unwrap();
    let Expr::Search { inputs, .. } = &out.expr else {
        panic!("expected search")
    };
    assert!(
        matches!(&inputs[0], Expr::Base(n) if n == "T"),
        "{}",
        out.expr
    );
    assert_equivalent(&dbms, "SELECT X FROM V2 WHERE X = 5 ;");
}

#[test]
fn codd_primitives_normalize_into_search() {
    use eds_lera::Scalar;
    let mut dbms = Dbms::new().unwrap();
    dbms.execute_ddl("TABLE R (X : INT, Y : INT); TABLE S (X : INT);")
        .unwrap();
    dbms.insert_all(
        "R",
        vec![vec![1.into(), 2.into()], vec![3.into(), 4.into()]],
    )
    .unwrap();
    dbms.insert("S", vec![1.into()]).unwrap();
    // A hand-built Codd-primitive plan: project(filter(join(R, S))).
    let plan = Expr::Project {
        input: Box::new(Expr::Filter {
            input: Box::new(Expr::Join {
                left: Box::new(Expr::base("R")),
                right: Box::new(Expr::base("S")),
                pred: Scalar::eq(Scalar::attr(1, 1), Scalar::attr(2, 1)),
            }),
            pred: Scalar::cmp(eds_lera::CmpOp::Lt, Scalar::attr(1, 2), Scalar::lit(10)),
        }),
        exprs: vec![Scalar::attr(1, 2)],
    };
    let rewritten = dbms
        .rewriter
        .rewrite(&plan, &dbms.db, &dbms.constraints)
        .unwrap();
    // Everything collapses into one compound search over the bases.
    let Expr::Search { inputs, .. } = &rewritten.expr else {
        panic!("expected search, got {}", rewritten.expr)
    };
    assert_eq!(inputs.len(), 2);
    assert!(inputs.iter().all(|i| matches!(i, Expr::Base(_))));
    let base = dbms.run_expr(&plan).unwrap();
    let opt = dbms.run_expr(&rewritten.expr).unwrap();
    assert!(base.set_eq(&opt));
    assert_eq!(opt.sorted_rows(), vec![vec![Value::Int(2)]]);
}

#[test]
fn aggregates_survive_rewriting() {
    let mut dbms = Dbms::new().unwrap();
    dbms.execute_ddl(
        "TABLE SALES (Region : CHAR, Amount : INT);
         INSERT INTO SALES VALUES
           ('north', 10), ('north', 30), ('south', 5), ('south', 7);
         CREATE VIEW Totals (Region, Total) AS
           SELECT Region, SUM(MakeBag(Amount)) FROM SALES GROUP BY Region ;",
    )
    .unwrap();
    let sql = "SELECT Total FROM Totals WHERE Region = 'north' ;";
    assert_equivalent(&dbms, sql);
    assert_eq!(
        dbms.query(sql).unwrap().sorted_rows(),
        vec![vec![Value::Int(40)]]
    );
    // The region predicate should reach below the nest via the
    // normalize (ProjectToSearch) + permutation (SearchNestPush) chain.
    let rewritten = dbms.rewrite(&dbms.prepare(sql).unwrap()).unwrap();
    fn nest_sees_region(e: &Expr) -> bool {
        match e {
            Expr::Nest { input, .. } => format!("{input}").contains("'north'"),
            _ => e.children().iter().any(|c| nest_sees_region(c)),
        }
    }
    assert!(
        nest_sees_region(&rewritten.expr),
        "predicate not pushed below nest: {}",
        rewritten.expr
    );
}

#[test]
fn analyze_reports_cost_improvement() {
    let mut dbms = film_dbms();
    dbms.execute_ddl(
        "CREATE VIEW Adventure (Numf, Title) AS \
         SELECT Numf, Title FROM FILM WHERE MEMBER('Adventure', Categories) ;",
    )
    .unwrap();
    let (before, after) = dbms
        .analyze("SELECT Title FROM Adventure WHERE Numf = 3 ;")
        .unwrap();
    assert!(
        after.cost < before.cost,
        "rewrite should reduce estimated cost: {} !< {}",
        after.cost,
        before.cost
    );
}

#[test]
fn merging_respects_duplicate_elimination_boundaries() {
    // SearchMerge must not merge across DEDUP: the distinct view's
    // duplicate elimination is semantically load-bearing.
    let mut dbms = Dbms::new().unwrap();
    dbms.execute_ddl(
        "TABLE T (X : INT);
         CREATE VIEW D (X) AS SELECT DISTINCT X FROM T ;",
    )
    .unwrap();
    dbms.insert_all("T", vec![vec![1.into()], vec![1.into()], vec![2.into()]])
        .unwrap();
    let sql = "SELECT X FROM D WHERE X > 0 ;";
    let prepared = dbms.prepare(sql).unwrap();
    let rewritten = dbms.rewrite(&prepared).unwrap();
    // Bag-level equivalence: the duplicate 1 must stay eliminated.
    let baseline = dbms.run_expr(&prepared.expr).unwrap();
    let optimized = dbms.run_expr(&rewritten.expr).unwrap();
    assert!(baseline.bag_eq(&optimized), "duplicates differ");
    assert_eq!(optimized.canonical().rows.len(), 2);
    // The DEDUP operator survives somewhere in the plan.
    fn has_dedup(e: &Expr) -> bool {
        matches!(e, Expr::Dedup(_)) || e.children().iter().any(|c| has_dedup(c))
    }
    assert!(has_dedup(&rewritten.expr), "{}", rewritten.expr);
}

#[test]
fn rewriting_is_bag_preserving_on_duplicate_heavy_data() {
    // Stronger than set equivalence: multiplicities must survive the
    // whole default pipeline (ESQL blocks produce bags by default).
    let mut dbms = Dbms::new().unwrap();
    dbms.execute_ddl(
        "TABLE T (X : INT, Y : INT);
         CREATE VIEW V (X, Y) AS SELECT X, Y FROM T WHERE X >= 0 ;",
    )
    .unwrap();
    for _ in 0..3 {
        dbms.insert("T", vec![1.into(), 2.into()]).unwrap();
    }
    dbms.insert("T", vec![2.into(), 2.into()]).unwrap();
    for sql in [
        "SELECT Y FROM V WHERE Y = 2 ;",
        "SELECT A.X FROM V A, V B WHERE A.X = B.X ;",
        "SELECT X FROM V UNION SELECT X FROM T ;",
    ] {
        let prepared = dbms.prepare(sql).unwrap();
        let rewritten = dbms.rewrite(&prepared).unwrap();
        let baseline = dbms.run_expr(&prepared.expr).unwrap();
        let optimized = dbms.run_expr(&rewritten.expr).unwrap();
        assert!(
            baseline.bag_eq(&optimized),
            "multiplicities changed for {sql}: {:?} vs {:?}",
            baseline.canonical().rows,
            optimized.canonical().rows
        );
    }
}

#[test]
fn negation_normalization_exposes_contradictions() {
    let mut dbms = Dbms::new().unwrap();
    dbms.execute_ddl("TABLE T (X : INT);").unwrap();
    dbms.insert_all(
        "T",
        (0..20i64).map(|i| vec![Value::Int(i)]).collect::<Vec<_>>(),
    )
    .unwrap();
    // NOT(X > 5) AND X > 9  ⇒  X <= 5 AND X > 9  ⇒  FALSE.
    let sql = "SELECT X FROM T WHERE NOT (X > 5) AND X > 9 ;";
    let rewritten = dbms.rewrite(&dbms.prepare(sql).unwrap()).unwrap();
    let Expr::Search { pred, .. } = &rewritten.expr else {
        panic!()
    };
    assert!(pred.is_false(), "expected FALSE, got {pred}");
    assert_equivalent(&dbms, sql);
    // De Morgan + folding: NOT(X > 5 OR X < 2) ⇒ X <= 5 AND X >= 2.
    let sql = "SELECT X FROM T WHERE NOT (X > 5 OR X < 2) ;";
    assert_equivalent(&dbms, sql);
    assert_eq!(dbms.query(sql).unwrap().len(), 4); // 2, 3, 4, 5
}
