//! Rewrite-output plan cache: hits return the identical plan, every
//! knowledge-base / catalog / constraint mutation invalidates, tracing
//! bypasses, and the cache stays bounded.

use eds_adt::Value;
use eds_core::Dbms;

fn film_dbms() -> Dbms {
    let mut dbms = Dbms::new().unwrap();
    dbms.execute_ddl(
        "TYPE Category ENUMERATION OF ('Comedy', 'Adventure', 'Science Fiction', 'Western') ;
         TYPE Person OBJECT TUPLE ( Name : CHAR, Firstname : SET OF CHAR) ;
         TYPE Actor SUBTYPE OF Person OBJECT TUPLE (Salary : NUMERIC) ;
         TYPE SetCategory SET OF Category ;
         TABLE FILM ( Numf : NUMERIC, Title : CHAR, Categories : SetCategory) ;
         TABLE APPEARS_IN ( Numf : NUMERIC, Refactor : Actor) ;",
    )
    .unwrap();
    let quinn = dbms.create_object(
        "Actor",
        Value::Tuple(vec![
            Value::str("Quinn"),
            Value::set(vec![]),
            Value::Int(12_000),
        ]),
    );
    dbms.insert_all(
        "FILM",
        vec![vec![
            Value::Int(1),
            Value::str("Desert Run"),
            Value::set(vec![Value::str("Adventure")]),
        ]],
    )
    .unwrap();
    dbms.insert_all("APPEARS_IN", vec![vec![Value::Int(1), quinn]])
        .unwrap();
    dbms
}

const QUERY: &str = "SELECT Title FROM FILM, APPEARS_IN \
                     WHERE Salary(Refactor) > 10000 AND FILM.Numf = APPEARS_IN.Numf ;";

#[test]
fn hit_returns_the_identical_plan() {
    let dbms = film_dbms();
    let prepared = dbms.prepare(QUERY).unwrap();
    assert_eq!(dbms.rewriter.plan_cache_len(), 0);

    let cold = dbms.rewrite(&prepared).unwrap();
    assert_eq!(dbms.rewriter.plan_cache_len(), 1);
    let warm = dbms.rewrite(&prepared).unwrap();
    assert_eq!(dbms.rewriter.plan_cache_len(), 1, "hit must not re-insert");

    assert_eq!(cold.term, warm.term);
    assert_eq!(cold.expr, warm.expr);
    assert_eq!(cold.stats, warm.stats);
    assert_eq!(cold.budget_exhausted, warm.budget_exhausted);

    // And both equal what the kernel produces without any cache.
    let uncached = dbms.rewrite_uncached(&prepared).unwrap();
    assert_eq!(uncached.term, warm.term);
    assert_eq!(dbms.rewriter.plan_cache_len(), 1, "uncached must not fill");
}

#[test]
fn every_mutation_class_invalidates() {
    let mut dbms = film_dbms();
    let prepared = dbms.prepare(QUERY).unwrap();

    let fill = |dbms: &Dbms| {
        dbms.rewrite(&prepared).unwrap();
        assert_eq!(dbms.rewriter.plan_cache_len(), 1);
    };

    // Rule addition.
    fill(&dbms);
    dbms.add_rule_source("ExtraNoop : f AND TRUE / --> f / ;")
        .unwrap();
    assert_eq!(dbms.rewriter.plan_cache_len(), 0, "add_rule_source");

    // Rule removal.
    fill(&dbms);
    assert!(dbms.rewriter.remove_rule("ExtraNoop"));
    assert_eq!(dbms.rewriter.plan_cache_len(), 0, "remove_rule");

    // DDL: rewrites consult the catalog (schemas, types).
    fill(&dbms);
    dbms.execute_ddl("TABLE SCRATCH ( X : NUMERIC ) ;").unwrap();
    assert_eq!(dbms.rewriter.plan_cache_len(), 0, "execute_ddl");

    // Semantic constraints: rewrites consult the constraint store.
    fill(&dbms);
    dbms.add_constraint_source(
        "SalaryPositive : F(x) / ISA(x, Actor) --> F(x) AND PROJECT(x, Salary) > 0 / ;",
    )
    .unwrap();
    assert_eq!(dbms.rewriter.plan_cache_len(), 0, "add_constraint_source");

    // Strategy changes (block limits).
    fill(&dbms);
    dbms.rewriter.set_all_limits(eds_rewrite::Limit::Infinite);
    assert_eq!(dbms.rewriter.plan_cache_len(), 0, "set_all_limits");

    // Row inserts do NOT invalidate: rewrites never read row data.
    fill(&dbms);
    dbms.insert(
        "FILM",
        vec![Value::Int(2), Value::str("Laugh Lines"), Value::set(vec![])],
    )
    .unwrap();
    assert_eq!(dbms.rewriter.plan_cache_len(), 1, "insert must not drop");
}

#[test]
fn tracing_bypasses_the_cache() {
    let mut dbms = film_dbms();
    // The tautological conjunct makes the simplify block fire, so the
    // traced rewrite has applications to record.
    let prepared = dbms
        .prepare("SELECT Title FROM FILM WHERE Numf > 0 AND 1 = 1 ;")
        .unwrap();
    dbms.rewrite(&prepared).unwrap();
    assert_eq!(dbms.rewriter.plan_cache_len(), 1);

    dbms.rewriter.collect_trace = true;
    let traced = dbms.rewrite(&prepared).unwrap();
    assert!(
        !traced.trace.events().is_empty(),
        "a traced rewrite of this query must record applications"
    );
    assert_eq!(
        dbms.rewriter.plan_cache_len(),
        1,
        "tracing must neither hit nor fill the cache"
    );
}

#[test]
fn cache_stays_bounded_and_clones_start_cold() {
    let dbms = film_dbms();
    // More distinct shapes than the cap (256): vary a literal.
    for i in 0..300 {
        let q = format!("SELECT Title FROM FILM WHERE Numf = {i} ;");
        let p = dbms.prepare(&q).unwrap();
        dbms.rewrite(&p).unwrap();
        assert!(
            dbms.rewriter.plan_cache_len() <= 256,
            "cache exceeded its cap at query {i}"
        );
    }
    assert!(dbms.rewriter.plan_cache_len() > 0);

    let cloned = dbms.rewriter.clone();
    assert_eq!(cloned.plan_cache_len(), 0, "clones must start cold");
}

#[test]
fn counters_track_hits_misses_and_invalidations() {
    let mut dbms = film_dbms();
    let stats0 = dbms.rewriter.plan_cache_stats();
    assert_eq!((stats0.hits, stats0.misses), (0, 0));

    let prepared = dbms.prepare(QUERY).unwrap();
    dbms.rewrite(&prepared).unwrap();
    dbms.rewrite(&prepared).unwrap();
    dbms.rewrite(&prepared).unwrap();
    let stats = dbms.rewriter.plan_cache_stats();
    assert_eq!(stats.misses, 1, "one cold rewrite");
    assert_eq!(stats.hits, 2, "two warm rewrites");
    assert_eq!(stats.evictions, 0);

    // Uncached rewrites touch no counter.
    dbms.rewrite_uncached(&prepared).unwrap();
    assert_eq!(dbms.rewriter.plan_cache_stats(), stats);

    // Invalidation events are counted (and the next rewrite misses).
    let invalidations_before = stats.invalidations;
    dbms.add_rule_source("CounterNoop : f AND TRUE / --> f / ;")
        .unwrap();
    let stats = dbms.rewriter.plan_cache_stats();
    assert!(stats.invalidations > invalidations_before);
    dbms.rewrite(&prepared).unwrap();
    assert_eq!(dbms.rewriter.plan_cache_stats().misses, 2);

    // Clones start with fresh counters.
    assert_eq!(
        dbms.rewriter.clone().plan_cache_stats(),
        eds_core::PlanCacheStats::default()
    );
}

#[test]
fn capacity_is_configurable_and_evictions_are_counted() {
    let mut dbms = film_dbms();
    dbms.rewriter.set_plan_cache_cap(3);
    assert_eq!(dbms.rewriter.plan_cache_cap(), 3);

    for i in 0..7 {
        let p = dbms
            .prepare(&format!("SELECT Title FROM FILM WHERE Numf = {i} ;"))
            .unwrap();
        dbms.rewrite(&p).unwrap();
        assert!(dbms.rewriter.plan_cache_len() <= 3, "cap violated at {i}");
    }
    let stats = dbms.rewriter.plan_cache_stats();
    assert_eq!(stats.misses, 7, "distinct shapes never hit");
    // Inserts 1,2,3 fill; the 4th and 7th insert each clear 3 entries.
    assert_eq!(stats.evictions, 6);

    // Cap 0 disables caching entirely.
    dbms.rewriter.set_plan_cache_cap(0);
    assert_eq!(dbms.rewriter.plan_cache_len(), 0);
    let p = dbms.prepare(QUERY).unwrap();
    dbms.rewrite(&p).unwrap();
    dbms.rewrite(&p).unwrap();
    assert_eq!(dbms.rewriter.plan_cache_len(), 0, "cap 0 must not fill");
    let disabled = dbms.rewriter.plan_cache_stats();
    assert_eq!(
        (disabled.hits, disabled.misses),
        (stats.hits, stats.misses),
        "cap 0 must bypass the counters too"
    );
}

#[test]
fn capacity_comes_from_the_environment() {
    // Safe under edition 2021; the only cross-test effect is a smaller
    // cap for rewriters constructed while the variable is set, which no
    // other assertion depends on.
    std::env::set_var("EDS_PLAN_CACHE_CAP", "2");
    let dbms = film_dbms();
    std::env::remove_var("EDS_PLAN_CACHE_CAP");
    assert_eq!(dbms.rewriter.plan_cache_cap(), 2);
    for i in 0..5 {
        let p = dbms
            .prepare(&format!("SELECT Title FROM FILM WHERE Numf = {i} ;"))
            .unwrap();
        dbms.rewrite(&p).unwrap();
        assert!(dbms.rewriter.plan_cache_len() <= 2);
    }
    // Unset (or garbage) falls back to the 256 default.
    assert_eq!(Dbms::new().unwrap().rewriter.plan_cache_cap(), 256);
}
