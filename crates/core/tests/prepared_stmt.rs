//! Parameterized prepared statements: prepare once, rewrite once,
//! execute many. Covers bind arity, NULL binds, Int/Real widening, the
//! shape-tier cache counters, epoch invalidation, parameter-independence
//! of value-dependent rewrites, and a differential suite asserting
//! `stmt.execute(&binds)` is byte-identical to running the
//! literal-substituted SQL through the reference interpreter across
//! parallelism {1,4} x columnar {off,on}.

use eds_adt::Value;
use eds_core::{engine::eval_reference, CoreError, Dbms};

fn emp_dbms() -> Dbms {
    let mut dbms = Dbms::new().unwrap();
    dbms.execute_ddl(
        "TABLE EMP ( Id : INT, Name : CHAR, Salary : INT, Rate : REAL ) ;
         TABLE DEPT ( Id : INT, Head : INT ) ;
         CREATE VIEW WELL_PAID (Id, Name, Salary) AS
           SELECT Id, Name, Salary FROM EMP WHERE Salary > 1000 ;",
    )
    .unwrap();
    dbms.insert_all(
        "EMP",
        vec![
            vec![1.into(), Value::str("Ada"), 2000.into(), Value::real(0.5)],
            vec![2.into(), Value::str("Bo"), 900.into(), Value::real(1.5)],
            vec![3.into(), Value::str("Cy"), 1500.into(), Value::real(2.5)],
            vec![4.into(), Value::str("Di"), 1500.into(), Value::Null],
            vec![
                5.into(),
                Value::str("O'Ryan"),
                400.into(),
                Value::real(0.25),
            ],
        ],
    )
    .unwrap();
    dbms.insert_all(
        "DEPT",
        vec![vec![10.into(), 1.into()], vec![20.into(), 3.into()]],
    )
    .unwrap();
    dbms
}

/// ESQL literal spelling of a bind value, for the differential oracle.
fn lit(v: &Value) -> String {
    match v {
        Value::Null => "NULL".into(),
        Value::Bool(b) => if *b { "TRUE" } else { "FALSE" }.into(),
        Value::Int(i) => i.to_string(),
        Value::Real(r) => format!("{:?}", r.0),
        Value::Str(s) => format!("'{}'", s.replace('\'', "''")),
        other => panic!("no literal spelling for {other:?}"),
    }
}

/// Replace each `?` (left to right) with the literal spelling of the
/// matching bind value. Test SQL never quotes a `?`.
fn substitute(sql: &str, binds: &[Value]) -> String {
    let mut next = binds.iter();
    sql.chars()
        .map(|c| {
            if c == '?' {
                lit(next.next().expect("more ? than binds"))
            } else {
                c.to_string()
            }
        })
        .collect()
}

#[test]
fn execute_matches_the_literal_query() {
    let dbms = emp_dbms();
    let stmt = dbms
        .prepare_stmt("SELECT Name FROM EMP WHERE Salary > ? ;")
        .unwrap();
    assert_eq!(stmt.param_count(), 1);
    assert_eq!(stmt.schema().fields[0].name, "Name");

    for threshold in [0_i64, 1000, 1500, 9999] {
        let got = stmt.execute(&dbms, &[Value::Int(threshold)]).unwrap();
        let want = dbms
            .query(&format!(
                "SELECT Name FROM EMP WHERE Salary > {threshold} ;"
            ))
            .unwrap();
        assert_eq!(got.rows, want.rows, "threshold {threshold}");
    }
}

#[test]
fn wrong_bind_arity_is_rejected() {
    let dbms = emp_dbms();
    let stmt = dbms
        .prepare_stmt("SELECT Name FROM EMP WHERE Salary > ? AND Rate < ? ;")
        .unwrap();
    assert_eq!(stmt.param_count(), 2);

    for bad in [0usize, 1, 3] {
        let binds = vec![Value::Int(1); bad];
        match stmt.execute(&dbms, &binds) {
            Err(CoreError::BindMismatch { expected: 2, got }) => assert_eq!(got, bad),
            other => panic!("arity {bad}: expected BindMismatch, got {other:?}"),
        }
    }

    // A statement without parameters takes the empty bind array.
    let plain = dbms.prepare_stmt("SELECT Name FROM EMP ;").unwrap();
    assert_eq!(plain.param_count(), 0);
    assert_eq!(plain.execute(&dbms, &[]).unwrap().rows.len(), 5);
}

#[test]
fn null_binds_behave_like_null_literals() {
    let dbms = emp_dbms();
    let stmt = dbms
        .prepare_stmt("SELECT Name FROM EMP WHERE Salary > ? ;")
        .unwrap();
    let got = stmt.execute(&dbms, &[Value::Null]).unwrap();
    let want = dbms
        .query("SELECT Name FROM EMP WHERE Salary > NULL ;")
        .unwrap();
    assert_eq!(got.rows, want.rows);
    assert!(got.rows.is_empty(), "NULL comparisons select nothing");

    // A NULL bind against a nullable REAL column, same story.
    let rate = dbms
        .prepare_stmt("SELECT Name FROM EMP WHERE Rate = ? ;")
        .unwrap();
    assert!(rate.execute(&dbms, &[Value::Null]).unwrap().rows.is_empty());
}

#[test]
fn int_and_real_binds_widen_like_literals() {
    let dbms = emp_dbms();

    // Real bind against the INT column: 1500.0 matches Salary = 1500.
    let by_salary = dbms
        .prepare_stmt("SELECT Name FROM EMP WHERE Salary = ? ;")
        .unwrap();
    let got = by_salary.execute(&dbms, &[Value::real(1500.0)]).unwrap();
    let want = dbms
        .query("SELECT Name FROM EMP WHERE Salary = 1500.0 ;")
        .unwrap();
    assert_eq!(got.rows, want.rows);
    assert_eq!(got.rows.len(), 2, "both 1500-salary rows match");

    // Int bind against the REAL column.
    let by_rate = dbms
        .prepare_stmt("SELECT Name FROM EMP WHERE Rate < ? ;")
        .unwrap();
    let got = by_rate.execute(&dbms, &[Value::Int(2)]).unwrap();
    let want = dbms.query("SELECT Name FROM EMP WHERE Rate < 2 ;").unwrap();
    assert_eq!(got.rows, want.rows);
    assert_eq!(got.rows.len(), 3);
}

#[test]
fn shape_tier_counts_hits_and_shares_across_binds() {
    let dbms = emp_dbms();
    let before = dbms.rewriter.plan_cache_stats();
    assert_eq!((before.shape_hits, before.shape_misses), (0, 0));

    let sql = "SELECT Name FROM EMP WHERE Salary > ? ;";
    let stmt = dbms.prepare_stmt(sql).unwrap();
    let cold = dbms.rewriter.plan_cache_stats();
    assert_eq!(cold.shape_misses, 1, "first prepare misses the shape tier");
    assert_eq!(cold.shape_hits, 0);
    assert_eq!(dbms.rewriter.shape_cache_len(), 1);

    // Re-preparing the same text hits the shape tier: the rewrite and
    // the lowering are both skipped.
    let again = dbms.prepare_stmt(sql).unwrap();
    let warm = dbms.rewriter.plan_cache_stats();
    assert_eq!((warm.shape_hits, warm.shape_misses), (1, 1));

    // Executions with different binds share the single cached shape:
    // no new entries, no further shape traffic.
    for i in 0..10 {
        stmt.execute(&dbms, &[Value::Int(i)]).unwrap();
        again.execute(&dbms, &[Value::Int(i * 100)]).unwrap();
    }
    let after = dbms.rewriter.plan_cache_stats();
    assert_eq!((after.shape_hits, after.shape_misses), (1, 1));
    assert_eq!(dbms.rewriter.shape_cache_len(), 1);

    // Clones start cold, like the term tier.
    assert_eq!(dbms.rewriter.clone().shape_cache_len(), 0);
}

#[test]
fn epoch_invalidation_re_rewrites_transparently() {
    let mut dbms = emp_dbms();
    let stmt = dbms
        .prepare_stmt("SELECT Name FROM EMP WHERE Salary > ? ;")
        .unwrap();
    let baseline = stmt.execute(&dbms, &[Value::Int(1000)]).unwrap();
    assert_eq!(baseline.rows.len(), 3);
    let misses_before = dbms.rewriter.plan_cache_stats().shape_misses;

    // A rule-base mutation advances the epoch and clears both tiers.
    dbms.add_rule_source("StmtNoop : f AND TRUE / --> f / ;")
        .unwrap();
    assert_eq!(dbms.rewriter.shape_cache_len(), 0, "mutation clears tier");

    // The next execute notices the stale epoch, re-rewrites through the
    // shape tier, and still answers correctly.
    let refreshed = stmt.execute(&dbms, &[Value::Int(1000)]).unwrap();
    assert_eq!(refreshed.rows, baseline.rows);
    let stats = dbms.rewriter.plan_cache_stats();
    assert_eq!(stats.shape_misses, misses_before + 1);
    assert_eq!(dbms.rewriter.shape_cache_len(), 1);

    // Once refreshed, further executes stay off the rewriter entirely.
    stmt.execute(&dbms, &[Value::Int(0)]).unwrap();
    assert_eq!(
        dbms.rewriter.plan_cache_stats().shape_misses,
        stats.shape_misses
    );
}

#[test]
fn value_dependent_folding_defers_to_bind_time() {
    let dbms = emp_dbms();
    // `? > 1` looks like a constant conjunct, but its value is unknown
    // at prepare time: the rewriter must NOT fold it to TRUE or FALSE.
    // One shared plan has to produce both outcomes.
    let stmt = dbms
        .prepare_stmt("SELECT Name FROM EMP WHERE ? > 1 ;")
        .unwrap();
    let none = stmt.execute(&dbms, &[Value::Int(0)]).unwrap();
    assert!(none.rows.is_empty(), "0 > 1 selects nothing");
    let all = stmt.execute(&dbms, &[Value::Int(5)]).unwrap();
    assert_eq!(all.rows.len(), 5, "5 > 1 selects every row");
}

/// Every (query, binds) pair must be byte-identical to the reference
/// interpreter running the literal-substituted SQL, for parallelism
/// {1,4} x columnar {off,on}.
#[test]
fn differential_binds_vs_literal_substitution() {
    let cases: &[(&str, &[&[Value]])] = &[
        (
            "SELECT Name FROM EMP WHERE Salary > ? ;",
            &[
                &[Value::Int(0)],
                &[Value::Int(1500)],
                &[Value::Int(9999)],
                &[Value::Null],
            ],
        ),
        (
            "SELECT Name, Salary FROM EMP WHERE Salary > ? AND Rate < ? ;",
            &[
                &[Value::Int(500), Value::real(2.0)],
                &[Value::real(899.5), Value::Int(3)],
                &[Value::Int(0), Value::Null],
            ],
        ),
        (
            "SELECT Salary FROM EMP WHERE Name = ? ;",
            &[
                &[Value::str("Ada")],
                &[Value::str("O'Ryan")],
                &[Value::str("nobody")],
            ],
        ),
        (
            "SELECT Name FROM WELL_PAID WHERE Salary < ? ;",
            &[&[Value::Int(1600)], &[Value::Int(0)]],
        ),
        (
            "SELECT Name FROM EMP, DEPT WHERE EMP.Id = DEPT.Head AND DEPT.Id = ? ;",
            &[&[Value::Int(10)], &[Value::Int(20)], &[Value::Int(99)]],
        ),
    ];

    let mut dbms = emp_dbms();
    for &parallelism in &[1usize, 4] {
        for &columnar in &[false, true] {
            dbms.eval_options.parallelism = parallelism;
            dbms.eval_options.columnar = columnar;
            dbms.eval_options.derived_mirror_min = 0;
            for (sql, bind_sets) in cases {
                let stmt = dbms.prepare_stmt(sql).unwrap();
                for binds in *bind_sets {
                    let got = stmt.execute(&dbms, binds).unwrap();
                    let literal_sql = substitute(sql, binds);
                    let rewritten = dbms.rewrite(&dbms.prepare(&literal_sql).unwrap()).unwrap();
                    let want =
                        eval_reference(&rewritten.expr, &dbms.db, dbms.eval_options).unwrap();
                    assert_eq!(
                        got.rows, want.rows,
                        "p={parallelism} columnar={columnar} sql={sql} binds={binds:?}"
                    );
                }
            }
        }
    }
}
