//! End-to-end tests of the `eds-lint` binary: machine formats must
//! carry the machine-applicable fixes (SARIF as `fix` objects with
//! resolvable `artifactChanges`), and `--verify` must surface semantic
//! refutations with the documented exit codes, deterministically under
//! a pinned seed.

use std::path::PathBuf;
use std::process::{Command, Output};

fn eds_lint(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_eds-lint"))
        .args(args)
        .output()
        .expect("eds-lint must spawn")
}

/// A unique temp file holding `content`; returns its path.
fn temp_rules(name: &str, content: &str) -> PathBuf {
    let path = std::env::temp_dir().join(format!("eds_lint_cli_{}_{name}", std::process::id()));
    std::fs::write(&path, content).unwrap();
    path
}

/// The canonical fixable finding: a growing rule in an unbounded block
/// (EDS010), whose suggestion rewrites the block with a finite limit.
const GROWING: &str = "Grow : A(x) / --> B(A(x), A(x)) / ;\nblock(g, {Grow}, INF) ;\n";

#[test]
fn sarif_output_carries_resolvable_fix_objects() {
    let path = temp_rules("growing.rules", GROWING);
    let out = eds_lint(&["--format", "sarif", path.to_str().unwrap()]);
    let doc = String::from_utf8(out.stdout).unwrap();
    assert!(doc.contains("\"version\":\"2.1.0\""), "{doc}");
    // The finding carries a SARIF fix with an artifactChange.
    assert!(doc.contains("\"fixes\":["), "{doc}");
    assert!(doc.contains("\"artifactChanges\":["), "{doc}");
    assert!(doc.contains("\"insertedContent\""), "{doc}");
    // The replacement is the bounded block, and the deleted region
    // resolves to the block item's exact byte span in the source.
    assert!(doc.contains("block(g, {Grow}, 100)"), "{doc}");
    let offset: usize = field(&doc, "\"charOffset\":").parse().unwrap();
    let length: usize = field(&doc, "\"charLength\":").parse().unwrap();
    let spanned = &GROWING[offset..offset + length];
    assert!(
        spanned.starts_with("block(g") && spanned.ends_with(';'),
        "deleted region resolves to {spanned:?}"
    );
    std::fs::remove_file(&path).ok();
}

/// First value after `key` in a flat JSON string, up to the next
/// delimiter. Enough for the hand-rolled documents under test.
fn field<'a>(doc: &'a str, key: &str) -> &'a str {
    let start = doc.find(key).unwrap_or_else(|| panic!("{key} in {doc}")) + key.len();
    let rest = &doc[start..];
    let end = rest.find([',', '}']).unwrap();
    &rest[..end]
}

#[test]
fn json_output_carries_fix_descriptions() {
    let path = temp_rules("growing.json.rules", GROWING);
    let out = eds_lint(&["--format", "json", path.to_str().unwrap()]);
    let doc = String::from_utf8(out.stdout).unwrap();
    assert!(doc.contains("\"code\":\"EDS010\""), "{doc}");
    assert!(doc.contains("\"fixes\":[{\"description\":"), "{doc}");
    std::fs::remove_file(&path).ok();
}

#[test]
fn verify_refutes_an_unsound_rule_file_with_exit_one() {
    let path = temp_rules(
        "bad.rules",
        "BadDeMorgan : NOT(f AND g) / --> NOT(f) OR g / ;\n",
    );
    let out = eds_lint(&["--verify", "--seed", "7", path.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(1));
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("EDS030"), "{text}");
    // Both instruments report: the prover's valuation and the fuzzer's
    // shrunk differential counterexample with its replay seed.
    assert!(text.contains("bounded equivalence prover"), "{text}");
    assert!(text.contains("differential fuzzing (seed "), "{text}");
    assert!(text.contains("minimal case:"), "{text}");

    // Same seed, same findings: the whole run is deterministic.
    let again = eds_lint(&["--verify", "--seed", "7", path.to_str().unwrap()]);
    assert_eq!(text, String::from_utf8(again.stdout).unwrap());
    std::fs::remove_file(&path).ok();
}

#[test]
fn seeds_file_drives_one_fuzz_pass_per_seed() {
    let rules = temp_rules(
        "seeded.rules",
        "BadDeMorgan : NOT(f AND g) / --> NOT(f) OR g / ;\n",
    );
    let seeds = temp_rules("seeds.txt", "# replay seeds\n7\n0xED5\n");
    let out = eds_lint(&[
        "--verify",
        "--seeds-file",
        seeds.to_str().unwrap(),
        rules.to_str().unwrap(),
    ]);
    assert_eq!(out.status.code(), Some(1));
    let text = String::from_utf8(out.stdout).unwrap();
    // One refutation per seed pass (the prover reports only once).
    assert_eq!(
        text.matches("differential fuzzing (seed ").count(),
        2,
        "{text}"
    );
    assert_eq!(
        text.matches("bounded equivalence prover").count(),
        1,
        "{text}"
    );
    std::fs::remove_file(&rules).ok();
    std::fs::remove_file(&seeds).ok();
}

#[test]
fn builtin_kb_passes_verify_with_default_exit_semantics() {
    // The shipped knowledge base must stay semantically clean: EDS032
    // side-condition warnings and EDS031 coverage notes are fine, any
    // EDS030 refutation fails the run.
    let out = eds_lint(&["--verify", "--format", "json"]);
    assert!(out.status.success(), "builtin KB failed --verify");
    let doc = String::from_utf8(out.stdout).unwrap();
    assert!(!doc.contains("\"code\":\"EDS030\""), "{doc}");
    // The info tier serializes with its own severity (SARIF: `note`).
    assert!(doc.contains("\"severity\":\"info\""), "{doc}");
    let sarif = eds_lint(&["--verify", "--format", "sarif"]);
    assert!(String::from_utf8(sarif.stdout)
        .unwrap()
        .contains("\"level\":\"note\""));
}
