//! Additional Alexander/magic coverage: multi-attribute bindings,
//! multiple seed branches, and end-to-end correctness on denser graphs.

use eds_adt::Value;
use eds_core::{magic, Dbms};
use eds_lera::{Expr, Scalar};

fn tc_body() -> Expr {
    Expr::Union(vec![
        Expr::base("E"),
        Expr::search(
            vec![Expr::base("T"), Expr::base("T")],
            Scalar::eq(Scalar::attr(1, 2), Scalar::attr(2, 1)),
            vec![Scalar::attr(1, 1), Scalar::attr(2, 2)],
        ),
    ])
}

#[test]
fn multiple_bound_attributes_on_linear_fix() {
    // Linear body preserving both attributes from the recursive
    // occurrence is reducible with a two-attribute binding.
    let body = Expr::Union(vec![
        Expr::base("E"),
        Expr::search(
            vec![Expr::base("X"), Expr::base("T")],
            Scalar::eq(Scalar::attr(1, 1), Scalar::attr(2, 1)),
            vec![Scalar::attr(2, 1), Scalar::attr(2, 2)],
        ),
    ]);
    let bound = vec![(1usize, Value::Int(3)), (2usize, Value::Int(4))];
    let reduced = magic::alexander("T", &body, &bound).expect("reducible");
    let Expr::Fix { body, .. } = reduced else {
        panic!()
    };
    let Expr::Union(items) = *body else { panic!() };
    let Expr::Filter { pred, .. } = &items[0] else {
        panic!("expected filtered seed")
    };
    let rendered = pred.to_string();
    assert!(
        rendered.contains("1.1 = 3") && rendered.contains("1.2 = 4"),
        "{rendered}"
    );
}

#[test]
fn multiple_seed_branches_all_filtered() {
    let body = Expr::Union(vec![
        Expr::base("E1"),
        Expr::base("E2"),
        Expr::search(
            vec![Expr::base("E1"), Expr::base("T")],
            Scalar::eq(Scalar::attr(1, 2), Scalar::attr(2, 1)),
            vec![Scalar::attr(1, 1), Scalar::attr(2, 2)],
        ),
    ]);
    let reduced = magic::alexander("T", &body, &[(2, Value::Int(1))]).expect("reducible");
    let Expr::Fix { body, .. } = reduced else {
        panic!()
    };
    let Expr::Union(items) = *body else { panic!() };
    let filtered = items
        .iter()
        .filter(|i| matches!(i, Expr::Filter { .. }))
        .count();
    assert_eq!(filtered, 2, "both seeds restricted");
}

#[test]
fn tc_shape_requires_strict_composition() {
    // Extra conjunct in the recursive branch: refuse (conservative).
    let body = Expr::Union(vec![
        Expr::base("E"),
        Expr::search(
            vec![Expr::base("T"), Expr::base("T")],
            Scalar::and(
                Scalar::eq(Scalar::attr(1, 2), Scalar::attr(2, 1)),
                Scalar::cmp(eds_lera::CmpOp::Lt, Scalar::attr(1, 1), Scalar::lit(5)),
            ),
            vec![Scalar::attr(1, 1), Scalar::attr(2, 2)],
        ),
    ]);
    assert!(magic::alexander("T", &body, &[(2, Value::Int(1))]).is_none());
    // The plain TC shape still reduces.
    assert!(magic::alexander("T", &tc_body(), &[(2, Value::Int(1))]).is_some());
}

#[test]
fn reduced_fixpoint_correct_on_dense_random_graph() {
    use eds_testkit::StdRng;

    let mut dbms = Dbms::new().unwrap();
    dbms.execute_ddl(
        "TABLE EDGE (S : INT, D : INT);
         CREATE VIEW TC (S, D) AS
         ( SELECT S, D FROM EDGE
           UNION SELECT A.S, B.D FROM TC A, TC B WHERE A.D = B.S ) ;",
    )
    .unwrap();
    let mut rng = StdRng::seed_from_u64(99);
    for _ in 0..60 {
        let a = rng.gen_range(0..15i64);
        let b = rng.gen_range(0..15i64);
        dbms.insert("EDGE", vec![a.into(), b.into()]).unwrap();
    }
    // Dense graphs include cycles — the reduction must stay correct.
    for src in 0..15i64 {
        let sql = format!("SELECT D FROM TC WHERE S = {src} ;");
        let baseline = dbms.query_unoptimized(&sql).unwrap();
        let optimized = dbms.query(&sql).unwrap();
        assert!(
            baseline.set_eq(&optimized),
            "magic broke source {src}: {:?} vs {:?}",
            baseline.sorted_rows(),
            optimized.sorted_rows()
        );
    }
}
