//! The withholding experiment: the end-to-end pin on rule discovery.
//!
//! Remove a family of proved builtin simplifications from the knowledge
//! base, run discovery at the pinned seed and budget, and require every
//! withheld rule to be re-discovered up to variable renaming (the
//! [`canonical_rule_key`] handle). This is the strongest evidence the
//! enumerate→prove→cost→dedup funnel works as a system: each withheld
//! rule must survive every stage, and the commutative pair folds onto a
//! single canonical form.
//!
//! The companion pins: the emitted source must register against the
//! withheld KB under the strictest lint policy, and a discovery run
//! over the *intact* KB must reject those same forms as redundant —
//! the joinability oracle, not chance, keeps the emitted set novel.

use eds_core::{Dbms, DiscoverOptions, LintPolicy};
use eds_rewrite::canonical_rule_key;

/// The withheld family. Every mirror partner goes with its rule — a
/// surviving orientation (TrueAnd for AndTrue, FalseOr for OrFalse,
/// NotLt for NotGt) would keep the candidate joinable and mask the
/// re-discovery — so the eight names pin five canonical forms.
const WITHHELD: [&str; 8] = [
    "NotNot", "AndTrue", "TrueAnd", "OrFalse", "FalseOr", "NotTrue", "NotGt", "NotLt",
];

/// Pinned run: the CI seed with a budget that lets the funnel reach
/// every withheld form even with the extra novelty the removals create.
fn opts() -> DiscoverOptions {
    DiscoverOptions {
        max_rules: 96,
        ..DiscoverOptions::default()
    }
}

#[test]
fn withheld_builtin_rules_are_rediscovered_up_to_renaming() {
    let mut dbms = Dbms::new().expect("builtin rules");
    let mut withheld_keys: Vec<(String, String)> = Vec::new();
    for name in WITHHELD {
        let rule = dbms
            .rewriter
            .rules()
            .get(name)
            .unwrap_or_else(|| panic!("builtin rule {name} missing"))
            .clone();
        withheld_keys.push((name.to_owned(), canonical_rule_key(&rule)));
        assert!(dbms.rewriter.remove_rule(name), "remove {name}");
    }
    // AndTrue and TrueAnd share the canonical form; at least 5 distinct
    // rules must actually be under test.
    let distinct: std::collections::BTreeSet<&str> =
        withheld_keys.iter().map(|(_, k)| k.as_str()).collect();
    assert!(
        distinct.len() >= 5,
        "only {} distinct forms",
        distinct.len()
    );

    let discovery = dbms.discover(&opts());
    let found: std::collections::BTreeSet<&str> =
        discovery.rules.iter().map(|d| d.key.as_str()).collect();
    for (name, key) in &withheld_keys {
        assert!(
            found.contains(key.as_str()),
            "withheld rule {name} (canonical {key}) not re-discovered; funnel: {}",
            discovery.funnel
        );
    }

    // The emitted source is the withheld KB's replacement: it must
    // register cleanly at the strictest lint policy.
    let added = dbms
        .add_rule_source_checked(&discovery.render(), LintPolicy::Deny)
        .expect("emitted rules register at deny");
    assert_eq!(added, discovery.rules.len() + 1, "rules + block");
}

#[test]
fn the_intact_kb_rejects_the_withheld_forms_as_redundant() {
    let dbms = Dbms::new().expect("builtin rules");
    let discovery = dbms.discover(&opts());
    let found: std::collections::BTreeSet<String> =
        discovery.rules.iter().map(|d| d.key.clone()).collect();
    for name in WITHHELD {
        let key = canonical_rule_key(dbms.rewriter.rules().get(name).expect(name));
        assert!(
            !found.contains(&key),
            "{name} still emitted against the intact KB (joinability gate failed)"
        );
    }
    assert!(
        discovery.funnel.redundant > 0,
        "the redundancy stage never fired: {}",
        discovery.funnel
    );
}
