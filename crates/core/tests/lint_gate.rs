//! Registration-time lint gate: the built-in knowledge base is pinned
//! lint-clean at `deny`, defects that used to surface only at rewrite
//! time are rejected at registration, and duplicate registration is no
//! longer silent.

use eds_core::{CoreError, Dbms, LintPolicy, QueryRewriter};
use eds_rewrite::{RewriteError, Severity};

/// The whole built-in library plus the example strategy re-registers
/// cleanly under `deny`: zero error-severity diagnostics.
#[test]
fn builtin_library_and_examples_lint_clean_at_deny() {
    let mut dbms = Dbms::new().unwrap();
    let errors: Vec<_> = dbms
        .lint()
        .into_iter()
        .filter(eds_rewrite::Diagnostic::is_error)
        .collect();
    assert!(
        errors.is_empty(),
        "built-in KB has lint errors: {errors:#?}"
    );

    // The shipped example rule file registers under deny (its one
    // size-increase finding is a warning, not an error).
    dbms.execute_ddl("TABLE METRICS (Sensor : CHAR, Reading : INT);")
        .unwrap();
    dbms.add_rule_source_checked(
        include_str!("../../../examples/custom_rules.rules"),
        LintPolicy::Deny,
    )
    .expect("example rules must lint clean at deny");
}

/// The built-in warnings are exactly the known size-increasing rules,
/// plus the one genuinely non-confluent critical pair: AndAssoc vs
/// DeMorganAnd (the KB carries no OR-associativity rule that could join
/// their reducts).
#[test]
fn builtin_warnings_are_the_expected_size_increases() {
    let rw = QueryRewriter::with_default_rules().unwrap();
    let diags = rw.lint(None);
    assert!(diags.iter().all(|d| d.severity == Severity::Warning));
    let mut shape: Vec<(&str, &str)> = diags
        .iter()
        .map(|d| (d.code, d.rule.as_deref().unwrap_or("")))
        .collect();
    shape.sort_unstable();
    assert_eq!(
        shape,
        [
            ("EDS010", "DeMorganAnd"),
            ("EDS010", "DeMorganOr"),
            ("EDS010", "FilterToSearch"),
            ("EDS010", "JoinToSearch"),
            ("EDS010", "ProjectToSearch"),
            ("EDS010", "SearchNestPush"),
            ("EDS010", "SearchUnionPush"),
            ("EDS010", "SearchUnionSplit"),
            ("EDS018", "AndAssoc"),
        ]
    );
}

/// Pre-PR behavior: a rule with an unbound RHS variable registered fine
/// and failed only when it matched during a rewrite. Under `deny` the
/// same source is rejected at registration, before anything commits.
#[test]
fn unbound_rhs_variable_rejected_at_registration_under_deny() {
    let mut dbms = Dbms::new().unwrap();
    let src = "Broken : SEARCH(l, f, a) / --> SEARCH(l, ghost, a) / ;\n\
               block(broken, {Broken}, 10) ;";

    // The runtime path still exists (Off bypasses the gate): the defect
    // only fires at application time, as before this PR.
    let mut unchecked = Dbms::new().unwrap();
    unchecked
        .rewriter
        .add_source_checked(src, LintPolicy::Off, None)
        .expect("Off policy must not reject");
    unchecked.rewriter.set_sequence(eds_rewrite::Sequence {
        blocks: vec!["broken".into()],
        passes: 1,
    });
    unchecked.execute_ddl("TABLE T (A : INT);").unwrap();
    let prepared = unchecked.prepare("SELECT A FROM T ;").unwrap();
    let err = unchecked.rewrite(&prepared).unwrap_err();
    assert!(
        matches!(err, CoreError::Rewrite(RewriteError::UnboundInRhs { .. })),
        "expected the historical runtime failure, got {err}"
    );

    // The gate front-loads it.
    let err = dbms
        .add_rule_source_checked(src, LintPolicy::Deny)
        .unwrap_err();
    let CoreError::LintRejected { diagnostics } = err else {
        panic!("expected LintRejected, got {err}");
    };
    assert!(diagnostics.iter().any(|d| d.code == "EDS001"));
    // Nothing was committed: the rule is absent, the block undefined.
    assert!(dbms.rewriter.rules().get("Broken").is_none());
    assert!(dbms.rewriter.strategy().block("broken").is_none());
}

/// Pre-PR behavior: an unknown method name registered fine and failed
/// at the first application. Under `deny` it is rejected up front.
#[test]
fn unknown_method_rejected_at_registration_under_deny() {
    let src = "BadCall : SEARCH(l, f, p) / --> SEARCH(l, g, p) / CONJURE(f, g) ;\n\
               block(badcall, {BadCall}, 10) ;";

    // Historical path: registration succeeds, the rewrite fails with
    // UnknownMethod once the rule matches.
    let mut unchecked = Dbms::new().unwrap();
    unchecked
        .rewriter
        .add_source_checked(src, LintPolicy::Off, None)
        .unwrap();
    unchecked.rewriter.set_sequence(eds_rewrite::Sequence {
        blocks: vec!["badcall".into()],
        passes: 1,
    });
    unchecked.execute_ddl("TABLE T (A : INT);").unwrap();
    let prepared = unchecked.prepare("SELECT A FROM T WHERE A > 0 ;").unwrap();
    let err = unchecked.rewrite(&prepared).unwrap_err();
    assert!(
        matches!(err, CoreError::Rewrite(RewriteError::UnknownMethod(_))),
        "expected the historical runtime failure, got {err}"
    );

    // Gated path: rejected before commit with EDS003.
    let mut dbms = Dbms::new().unwrap();
    let err = dbms
        .add_rule_source_checked(src, LintPolicy::Deny)
        .unwrap_err();
    let CoreError::LintRejected { diagnostics } = err else {
        panic!("expected LintRejected, got {err}");
    };
    assert!(diagnostics.iter().any(|d| d.code == "EDS003"));
}

/// Regression (satellite 1): re-registering an existing rule name used
/// to silently replace it. The analyzer reports EDS008; `deny` rejects
/// and leaves the original rule in place.
#[test]
fn duplicate_rule_registration_is_surfaced() {
    let mut dbms = Dbms::new().unwrap();
    dbms.add_rule_source_checked("Mine : F(x) / --> G(x) / ;", LintPolicy::Deny)
        .unwrap();

    let err = dbms
        .add_rule_source_checked("Mine : F(x) / --> H(x) / ;", LintPolicy::Deny)
        .unwrap_err();
    let CoreError::LintRejected { diagnostics } = err else {
        panic!("expected LintRejected, got {err}");
    };
    assert!(diagnostics.iter().any(|d| d.code == "EDS008"));
    // The original registration survived.
    assert!(dbms.rewriter.rules().get("Mine").unwrap().rhs.is_app("G"));

    // Under Warn the duplicate still replaces (documented semantics for
    // interactive redefinition), it just reports.
    dbms.add_rule_source_checked("Mine : F(x) / --> H(x) / ;", LintPolicy::Warn)
        .unwrap();
    assert!(dbms.rewriter.rules().get("Mine").unwrap().rhs.is_app("H"));
}

/// Batch atomicity: one bad rule in a multi-item source rejects the
/// whole batch; none of its good items commit either.
#[test]
fn deny_rejects_the_whole_batch_atomically() {
    let mut dbms = Dbms::new().unwrap();
    let err = dbms
        .add_rule_source_checked(
            "Good : F(x) / --> x / ;\n\
             Bad : G(x) / --> G(ghost) / ;\n\
             block(mixed, {Good, Bad}, 5) ;",
            LintPolicy::Deny,
        )
        .unwrap_err();
    assert!(matches!(err, CoreError::LintRejected { .. }));
    assert!(dbms.rewriter.rules().get("Good").is_none());
    assert!(dbms.rewriter.strategy().block("mixed").is_none());
}

/// Attribution: re-registering over a dirty knowledge base reports only
/// the new batch's findings, not pre-existing ones.
#[test]
fn diagnostics_attribute_to_the_new_batch_only() {
    let rw = QueryRewriter::with_default_rules().unwrap();
    // A clean user rule in a finite block: no findings at all, despite
    // the built-in EDS010 warnings existing in the staged state.
    let diags = rw
        .lint_source(
            "Mine : F(F(x)) / --> F(x) / ;\nblock(mine, {Mine}, 8) ;",
            None,
        )
        .unwrap();
    assert!(diags.is_empty(), "leaked pre-existing findings: {diags:#?}");
}

/// The analyzer over the full built-in KB *with a populated catalog*
/// (the paper's film database): the schema-aware checks stay silent on
/// the builtins, and a user rule referencing a ghost relation adds
/// exactly its own catalog + membership findings. Pins the complete
/// (code, rule) multiset so any analyzer change here is a conscious one.
#[test]
fn film_catalog_lint_is_pinned_exactly() {
    let mut dbms = Dbms::new().unwrap();
    dbms.execute_ddl(
        "TABLE FILM ( Numf : NUMERIC, Title : CHAR, Categories : CHAR) ;
         TABLE APPEARS_IN ( Numf : NUMERIC, Refactor : CHAR) ;
         TABLE DOMINATE ( Numf : NUMERIC, Refactor1 : CHAR, Refactor2 : CHAR, Score : INT) ;",
    )
    .unwrap();

    let builtin_expected = [
        ("EDS010", "DeMorganAnd"),
        ("EDS010", "DeMorganOr"),
        ("EDS010", "FilterToSearch"),
        ("EDS010", "JoinToSearch"),
        ("EDS010", "ProjectToSearch"),
        ("EDS010", "SearchNestPush"),
        ("EDS010", "SearchUnionPush"),
        ("EDS010", "SearchUnionSplit"),
        ("EDS018", "AndAssoc"),
    ];
    let shape = |diags: &[eds_rewrite::Diagnostic]| -> Vec<(&'static str, String)> {
        let mut v: Vec<(&'static str, String)> = diags
            .iter()
            .map(|d| (d.code, d.rule.clone().unwrap_or_default()))
            .collect();
        v.sort_unstable();
        v
    };
    assert_eq!(
        shape(&dbms.lint()),
        builtin_expected
            .iter()
            .map(|(c, r)| (*c, (*r).to_owned()))
            .collect::<Vec<_>>(),
        "catalog-backed lint of the builtins must stay exactly pinned"
    );

    // One user rule: a ghost relation on the LHS (EDS014) and no block
    // membership (EDS020). The known FILM reference adds nothing.
    dbms.add_rule_source_checked(
        "Ghost : FILTER(NOSUCH, f) / --> FILTER(FILM, f) / ;",
        LintPolicy::Warn,
    )
    .unwrap();
    let mut expected: Vec<(&str, String)> = builtin_expected
        .iter()
        .map(|(c, r)| (*c, (*r).to_owned()))
        .collect();
    expected.push(("EDS014", "Ghost".to_owned()));
    expected.push(("EDS020", "Ghost".to_owned()));
    expected.sort_unstable();
    assert_eq!(shape(&dbms.lint()), expected);
}

/// Schema-aware path: `Dbms::add_rule_source_checked` consults the
/// catalog, so unknown relation references warn (and known ones don't).
#[test]
fn catalog_backed_relation_check() {
    let mut dbms = Dbms::new().unwrap();
    dbms.execute_ddl("TABLE EMP (Name : CHAR, Dept : INT);")
        .unwrap();
    let schema_hit = dbms
        .rewriter
        .lint_source("R : FILTER(NOPE, f) / --> TRUE / ;", None)
        .unwrap();
    assert!(
        schema_hit.iter().all(|d| d.code != "EDS014"),
        "no catalog supplied, EDS014 must not fire"
    );
    // Through the Dbms (catalog supplied): the unknown relation warns.
    dbms.add_rule_source_checked("R : FILTER(NOPE, f) / --> TRUE / ;", LintPolicy::Warn)
        .unwrap();
    let diags = dbms.lint();
    assert!(diags.iter().any(|d| d.code == "EDS014"));
    // A rule over the declared table raises no *catalog* finding under
    // the same catalog. (EDS020 still notes it belongs to no block —
    // that is the whole-strategy layer, not the schema check.)
    dbms.add_rule_source_checked("S : FILTER(EMP, f) / --> TRUE / ;", LintPolicy::Deny)
        .unwrap();
    assert!(dbms
        .lint()
        .iter()
        .all(|d| d.rule.as_deref() != Some("S") || d.code == "EDS020"));
}
