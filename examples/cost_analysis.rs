//! Plan-quality analysis: the logical cost model ranks plans the same
//! way the engine's work counters do, and `Dbms::analyze` exposes the
//! before/after estimate for any query.
//!
//! ```sh
//! cargo run --example cost_analysis
//! ```

use eds_core::Dbms;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut dbms = Dbms::new()?;
    dbms.execute_ddl(
        "TABLE ORDERS (Id : INT, Cust : INT, Total : INT);
         TABLE CUSTOMER (Id : INT, Region : CHAR);
         CREATE VIEW BigOrders (Id, Cust, Total) AS
           SELECT Id, Cust, Total FROM ORDERS WHERE Total > 500 ;
         CREATE VIEW BigByRegion (Region, OrderId) AS
           SELECT Region, BigOrders.Id FROM BigOrders, CUSTOMER
           WHERE Cust = CUSTOMER.Id ;",
    )?;
    for i in 0..400i64 {
        dbms.insert(
            "ORDERS",
            vec![i.into(), (i % 50).into(), (i * 13 % 1000).into()],
        )?;
    }
    for c in 0..50i64 {
        dbms.insert(
            "CUSTOMER",
            vec![
                c.into(),
                ["north", "south", "east"][(c % 3) as usize].into(),
            ],
        )?;
    }

    let queries = [
        "SELECT OrderId FROM BigByRegion WHERE Region = 'north' ;",
        "SELECT Id FROM BigOrders WHERE Id = 7 ;",
        "SELECT Region FROM BigByRegion WHERE OrderId < 10 AND OrderId > 20 ;",
    ];

    println!(
        "{:<66} {:>12} {:>12} {:>10} {:>10}",
        "query", "est_before", "est_after", "work_bef", "work_aft"
    );
    for sql in queries {
        let (before, after) = dbms.analyze(sql)?;
        let prepared = dbms.prepare(sql)?;
        let rewritten = dbms.rewrite(&prepared)?;
        let (_, wb) = dbms.run_expr_with_stats(&prepared.expr)?;
        let (ra, wa) = dbms.run_expr_with_stats(&rewritten.expr)?;
        println!(
            "{:<66} {:>12.0} {:>12.0} {:>10} {:>10}",
            sql,
            before.cost,
            after.cost,
            wb.combinations_tried + wb.rows_emitted,
            wa.combinations_tried + wa.rows_emitted,
        );
        // Sanity: estimates and real work must agree on the winner.
        assert!(
            (after.cost <= before.cost) == (wa.combinations_tried <= wb.combinations_tried),
            "cost model disagrees with measured work on {sql}"
        );
        let _ = ra;
    }
    println!("\nthe model and the engine agree on which plan wins for every query.");
    Ok(())
}
