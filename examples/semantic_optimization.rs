//! Semantic query optimization (Section 6): integrity constraints,
//! implicit knowledge, inconsistency detection — and the block-limit
//! trade-off the paper's conclusion discusses.
//!
//! ```sh
//! cargo run --example semantic_optimization
//! ```

use eds_core::Dbms;
use eds_rewrite::Limit;

fn build() -> Result<Dbms, Box<dyn std::error::Error>> {
    let mut dbms = Dbms::new()?;
    dbms.execute_ddl(
        "TYPE Grade ENUMERATION OF ('A', 'B', 'C') ;
         TABLE PRODUCT (Id : INT, Grade : Grade, Price : INT, Weight : INT);",
    )?;
    // Integrity constraints, declared in the rule language (Figure 10):
    // the Grade domain, and two attribute-level axioms.
    dbms.add_constraint_source(
        "GradeDomain : F(x) / ISA(x, Grade) --> F(x) AND MEMBER(x, {'A', 'B', 'C'}) / ;",
    )?;
    for i in 0..50i64 {
        let grade = ["A", "B", "C"][(i % 3) as usize];
        dbms.insert(
            "PRODUCT",
            vec![i.into(), grade.into(), (i * 10).into(), (i % 7).into()],
        )?;
    }
    Ok(dbms)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut dbms = build()?;

    // 1. Domain-constraint inconsistency: grade 'D' does not exist. The
    //    constraint is added to the qualification, equality substitution
    //    turns MEMBER(x, {...}) into MEMBER('D', {...}), folding makes it
    //    FALSE — the query never touches the data.
    let sql = "SELECT Id FROM PRODUCT WHERE Grade = 'D' ;";
    let prepared = dbms.prepare(sql)?;
    let rewritten = dbms.rewrite(&prepared)?;
    println!("Grade = 'D' rewrites to: {}", rewritten.expr);
    let (rows, stats) = dbms.run_expr_with_stats(&rewritten.expr)?;
    println!(
        "rows={} combinations_tried={} (0 = inconsistency detected statically)\n",
        rows.len(),
        stats.combinations_tried
    );

    // 2. Implicit knowledge: transitivity + equality substitution expose
    //    a contradiction spread across conjuncts.
    let sql = "SELECT Id FROM PRODUCT WHERE Price = Weight AND Price > 100 AND Weight < 7 ;";
    let rewritten = dbms.rewrite(&dbms.prepare(sql)?)?;
    println!("contradictory join query rewrites to: {}", rewritten.expr);
    println!();

    // 3. The limit trade-off (paper conclusion): "If one stops too early
    //    (low limit), then the logical optimization can actually
    //    complicate the query." Sweep the semantic block limit.
    let sql = "SELECT Id FROM PRODUCT WHERE Grade = 'D' AND Price > 10 ;";
    for limit in [0u64, 1, 2, 5, 50] {
        dbms.rewriter
            .strategy_mut()
            .set_limit("semantic", Limit::Finite(limit))?;
        let prepared = dbms.prepare(sql)?;
        let rewritten = dbms.rewrite(&prepared)?;
        let (rows, stats) = dbms.run_expr_with_stats(&rewritten.expr)?;
        println!(
            "semantic limit {limit:>3}: rewrite_checks={:<5} exec_combos={:<5} rows={}",
            rewritten.stats.condition_checks,
            stats.combinations_tried,
            rows.len()
        );
    }
    println!("\nwith limit 0 the semantic block is disabled and the engine");
    println!("scans; with a sufficient limit the contradiction is found");
    println!("and execution is free.");

    Ok(())
}
