//! The paper's running example: the film database of Figure 2, the
//! queries of Figures 3–5, and what the rewriter does to each.
//!
//! ```sh
//! cargo run --example film_database
//! ```

use eds_adt::Value;
use eds_core::{figure10_constraints, Dbms};

fn build() -> Result<Dbms, Box<dyn std::error::Error>> {
    let mut dbms = Dbms::new()?;

    // Figure 2: type and relation definitions (verbatim modulo OCR).
    dbms.execute_ddl(
        "TYPE Category ENUMERATION OF ('Comedy', 'Adventure', 'Science Fiction', 'Western') ;
         TYPE Point TUPLE (ABS : REAL, ORD : REAL) ;
         TYPE Person OBJECT TUPLE ( Name : CHAR, Firstname : SET OF CHAR,
                                    Caricature : LIST OF Point) ;
         TYPE Actor SUBTYPE OF Person OBJECT TUPLE (Salary : NUMERIC)
           FUNCTION IncreaseSalary(This Actor, Val NUMERIC) ;
         TYPE Text LIST OF CHAR ;
         TYPE SetCategory SET OF Category ;
         TYPE Pairs LIST OF TUPLE (Pros : INT, Cons : INT) ;
         TABLE FILM ( Numf : NUMERIC, Title : CHAR, Categories : SetCategory) ;
         TABLE APPEARS_IN ( Numf : NUMERIC, Refactor : Actor) ;
         TABLE DOMINATE ( Numf : NUMERIC, Refactor1 : Actor, Refactor2 : Actor, Score : Pairs) ;",
    )?;

    // Figure 4: the nested view, Figure 5: the recursive view.
    dbms.execute_ddl(
        "CREATE VIEW FilmActors (Title, Categories, Actors) AS
           SELECT Title, Categories, MakeSet(Refactor)
           FROM FILM, APPEARS_IN WHERE FILM.Numf = APPEARS_IN.Numf
           GROUP BY Title, Categories ;
         CREATE VIEW BETTER_THAN (Refactor1, Refactor2) AS
           ( SELECT Refactor1, Refactor2 FROM DOMINATE
             UNION
             SELECT B1.Refactor1, B2.Refactor2
             FROM BETTER_THAN B1, BETTER_THAN B2
             WHERE B1.Refactor2 = B2.Refactor1 ) ;",
    )?;

    // Figure 10: the integrity constraints, written in the rule language.
    dbms.add_constraint_source(figure10_constraints())?;

    // A small population of actors (objects, referentially shared).
    let actor = |dbms: &mut Dbms, name: &str, salary: i64| {
        dbms.create_object(
            "Actor",
            Value::Tuple(vec![
                Value::str(name),
                Value::set(vec![Value::str(&name[..1])]),
                Value::list(vec![]),
                Value::Int(salary),
            ]),
        )
    };
    let quinn = actor(&mut dbms, "Quinn", 12_000);
    let marla = actor(&mut dbms, "Marla", 20_000);
    let pedro = actor(&mut dbms, "Pedro", 8_000);
    let nora = actor(&mut dbms, "Nora", 30_000);

    dbms.insert_all(
        "FILM",
        vec![
            vec![
                Value::Int(1),
                Value::str("Desert Run"),
                Value::set(vec![Value::str("Adventure"), Value::str("Western")]),
            ],
            vec![
                Value::Int(2),
                Value::str("Laugh Lines"),
                Value::set(vec![Value::str("Comedy")]),
            ],
            vec![
                Value::Int(3),
                Value::str("Star Cargo"),
                Value::set(vec![Value::str("Science Fiction"), Value::str("Adventure")]),
            ],
        ],
    )?;
    dbms.insert_all(
        "APPEARS_IN",
        vec![
            vec![Value::Int(1), quinn.clone()],
            vec![Value::Int(1), marla.clone()],
            vec![Value::Int(2), quinn.clone()],
            vec![Value::Int(3), marla.clone()],
            vec![Value::Int(3), nora.clone()],
        ],
    )?;
    let score = Value::list(vec![Value::Tuple(vec![Value::Int(6), Value::Int(2)])]);
    dbms.insert_all(
        "DOMINATE",
        vec![
            vec![Value::Int(1), marla.clone(), quinn.clone(), score.clone()],
            vec![Value::Int(1), quinn.clone(), pedro.clone(), score.clone()],
            vec![Value::Int(3), nora.clone(), marla.clone(), score.clone()],
        ],
    )?;
    Ok(dbms)
}

fn show(dbms: &Dbms, label: &str, sql: &str) -> Result<(), Box<dyn std::error::Error>> {
    println!("=== {label} ===");
    println!("{sql}\n");
    println!("{}", dbms.explain(sql)?);
    let rows = dbms.query(sql)?;
    println!("result ({} rows):", rows.len());
    for row in rows.sorted_rows() {
        println!(
            "  {:?}",
            row.iter().map(ToString::to_string).collect::<Vec<_>>()
        );
    }
    println!();
    Ok(())
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let dbms = build()?;

    // Figure 3: object attributes as functions, set membership.
    show(
        &dbms,
        "Figure 3",
        "SELECT Title, Categories, Salary(Refactor)
         FROM FILM, APPEARS_IN
         WHERE FILM.Numf = APPEARS_IN.Numf
         AND Name(Refactor) = 'Quinn'
         AND MEMBER('Adventure', Categories) ;",
    )?;

    // Figure 4: the nested view with the ALL quantifier.
    show(
        &dbms,
        "Figure 4",
        "SELECT Title FROM FilmActors
         WHERE MEMBER('Adventure', Categories) AND ALL (Salary(Actors) > 10_000) ;",
    )?;

    // Figure 5: recursion — who dominates Quinn (transitively)?
    show(
        &dbms,
        "Figure 5",
        "SELECT Name(Refactor1) FROM BETTER_THAN WHERE Name(Refactor2) = 'Quinn' ;",
    )?;

    // Section 6.1: an inconsistent category is detected statically.
    show(
        &dbms,
        "Section 6.1 (inconsistency)",
        "SELECT Title FROM FILM
         WHERE MEMBER('Cartoon', MAKESET('Comedy', 'Adventure', 'Science Fiction', 'Western')) ;",
    )?;

    Ok(())
}
