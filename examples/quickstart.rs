//! Quickstart: declare a schema, load rows, run a query through the
//! rule-based rewriter, and inspect what the rewriter did.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use eds_core::Dbms;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut dbms = Dbms::new()?;

    // 1. DDL: a table and a view. Views are inlined naively at
    //    translation time; the Figure-7 merging rules collapse them.
    dbms.execute_ddl(
        "TABLE EMPLOYEE (Id : INT, Name : CHAR, Dept : CHAR, Salary : INT);
         CREATE VIEW WellPaid (Id, Name, Dept) AS
           SELECT Id, Name, Dept FROM EMPLOYEE WHERE Salary > 50_000;",
    )?;

    // 2. Data.
    let people = [
        (1, "Ada", "Research", 90_000),
        (2, "Grace", "Research", 85_000),
        (3, "Edsger", "Theory", 40_000),
        (4, "Barbara", "Systems", 95_000),
    ];
    for (id, name, dept, salary) in people {
        dbms.insert(
            "EMPLOYEE",
            vec![id.into(), name.into(), dept.into(), salary.into()],
        )?;
    }

    // 3. A query over the view, with a contradiction-prone qualification.
    let sql = "SELECT Name FROM WellPaid WHERE Dept = 'Research' AND Id < 2 + 1;";

    // The canonical plan still contains the view as a nested search, and
    // the arithmetic unevaluated:
    let prepared = dbms.prepare(sql)?;
    println!("canonical plan:\n  {}", prepared.expr);

    // The rewriter merges the view, folds 2 + 1, and leaves one search:
    let rewritten = dbms.rewrite(&prepared)?;
    println!("rewritten plan:\n  {}", rewritten.expr);
    println!(
        "({} rule applications in {} condition checks)",
        rewritten.stats.applications, rewritten.stats.condition_checks
    );

    // 4. Execute.
    let result = dbms.run_expr(&rewritten.expr)?;
    println!("result:");
    for row in result.sorted_rows() {
        println!("  {row:?}");
    }
    assert_eq!(result.sorted_rows().len(), 2); // Ada and Grace

    // 5. The whole pipeline in one call:
    let again = dbms.query(sql)?;
    assert!(again.set_eq(&result));

    Ok(())
}
