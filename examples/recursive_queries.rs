//! Recursive query processing: the fix operator, naive vs semi-naive
//! evaluation, and the Alexander/magic-sets reduction (Figure 9).
//!
//! Builds a random graph, defines its transitive closure as a recursive
//! ESQL view, and measures the engine work for a bound query
//! `TC(src = c)` under each strategy.
//!
//! ```sh
//! cargo run --release --example recursive_queries
//! ```

use eds_core::Dbms;
use eds_engine::{EvalOptions, FixMode, FixOptions};
use eds_testkit::StdRng;

fn build(nodes: i64, edges_per_node: usize, seed: u64) -> Result<Dbms, Box<dyn std::error::Error>> {
    let mut dbms = Dbms::new()?;
    dbms.execute_ddl(
        "TABLE EDGE (Src : INT, Dst : INT);
         CREATE VIEW TC (Src, Dst) AS
         ( SELECT Src, Dst FROM EDGE
           UNION
           SELECT T1.Src, T2.Dst FROM TC T1, TC T2 WHERE T1.Dst = T2.Src ) ;",
    )?;
    let mut rng = StdRng::seed_from_u64(seed);
    for src in 0..nodes {
        for _ in 0..edges_per_node {
            // Mostly-forward edges keep the closure size manageable.
            let dst = (src + 1 + rng.gen_range(0..4)).min(nodes - 1);
            if dst != src {
                dbms.insert("EDGE", vec![src.into(), dst.into()])?;
            }
        }
    }
    Ok(dbms)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let nodes = 60;
    let mut dbms = build(nodes, 2, 42)?;
    let sql = format!("SELECT Dst FROM TC WHERE Src = {} ;", nodes - 10);

    let prepared = dbms.prepare(&sql)?;
    let rewritten = dbms.rewrite(&prepared)?;
    println!("canonical: {}", prepared.expr);
    println!("rewritten: {}", rewritten.expr);
    println!();

    let report = |label: &str, expr: &eds_lera::Expr, mode: FixMode, dbms: &mut Dbms| {
        dbms.eval_options = EvalOptions {
            fix: FixOptions {
                mode,
                max_iterations: 100_000,
            },
            ..Default::default()
        };
        let start = std::time::Instant::now();
        let (rel, stats) = dbms.run_expr_with_stats(expr).unwrap();
        println!(
            "{label:<34} rows={:<4} combos={:<10} fix_iters={:<3} wall={:?}",
            rel.deduped().len(),
            stats.combinations_tried,
            stats.fix_iterations,
            start.elapsed()
        );
        rel.deduped().len()
    };

    println!("strategy comparison for: {sql}");
    let a = report(
        "naive, no rewriting",
        &prepared.expr,
        FixMode::Naive,
        &mut dbms,
    );
    let b = report(
        "semi-naive, no rewriting",
        &prepared.expr,
        FixMode::SemiNaive,
        &mut dbms,
    );
    let c = report(
        "naive + Alexander",
        &rewritten.expr,
        FixMode::Naive,
        &mut dbms,
    );
    let d = report(
        "semi-naive + Alexander",
        &rewritten.expr,
        FixMode::SemiNaive,
        &mut dbms,
    );
    assert!(
        a == b && b == c && c == d,
        "strategies must agree on results"
    );

    println!("\nall four strategies return identical answers; the work");
    println!("counters show the multiplicative effect of semi-naive");
    println!("evaluation and the Alexander fixpoint reduction.");
    Ok(())
}
