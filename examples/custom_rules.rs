//! Extensibility: the database implementor adds optimization rules in
//! the Figure-6 rule language, registers a native ADT function, and
//! reshapes the optimizer's control strategy — all without touching the
//! rewriter's source.
//!
//! ```sh
//! cargo run --example custom_rules
//! ```

use eds_adt::{Arity, Value};
use eds_core::Dbms;
use eds_rewrite::{Limit, Sequence};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut dbms = Dbms::new()?;
    dbms.execute_ddl("TABLE METRICS (Sensor : CHAR, Reading : INT);")?;
    for (s, r) in [("a", 10), ("a", 60), ("b", 75), ("c", 20)] {
        dbms.insert("METRICS", vec![s.into(), r.into()])?;
    }

    // 1. A user ADT function, registered like the paper's C++ methods.
    dbms.db
        .functions
        .register("CELSIUS", Arity::Exact(1), |args, _| {
            let f = args[0].as_f64()?;
            Ok(Value::real((f - 32.0) * 5.0 / 9.0))
        });

    // 2. User rewrite rules in the rule language: a domain-specific
    //    simplification (readings are known to be < 200) and an
    //    unfolding of a convenience predicate. The source lives in
    //    `examples/custom_rules.rules` so the CI eds-lint job can check
    //    it; registration lints it again (schema-aware) under EDS_LINT.
    let added = dbms.add_rule_source(include_str!("custom_rules.rules"))?;
    println!("installed {added} user items (rules/blocks/seq)");

    // 3. The user predicate now works in queries and is unfolded before
    //    the standard blocks run.
    let sql = "SELECT Sensor FROM METRICS WHERE READINGOK(Reading) AND Reading <= 200 ;";
    let prepared = dbms.prepare(sql)?;
    let rewritten = dbms.rewrite(&prepared)?;
    println!("canonical: {}", prepared.expr);
    println!("rewritten: {}", rewritten.expr);
    let rows = dbms.run_expr(&rewritten.expr)?;
    println!("rows: {}", rows.len());
    assert_eq!(rows.len(), 4); // all readings are valid

    // 4. Rules can be removed, limits changed, blocks resequenced.
    assert!(dbms.rewriter.remove_rule("ReadingBound"));
    dbms.rewriter
        .strategy_mut()
        .set_limit("user", Limit::Finite(1))?;
    dbms.rewriter.set_sequence(Sequence {
        blocks: vec!["user".into(), "simplify".into()],
        passes: 1,
    });
    let rewritten = dbms.rewrite(&prepared)?;
    println!("after reshaping the strategy: {}", rewritten.expr);

    // 5. The native function evaluates inside queries.
    let rows = dbms.query("SELECT Sensor FROM METRICS WHERE CELSIUS(Reading) > 20 ;")?;
    println!("sensors above 20°C: {:?}", rows.sorted_rows());
    assert_eq!(rows.len(), 1); // 75°F ≈ 23.9°C

    Ok(())
}
