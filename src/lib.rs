//! # eds-repro — reproduction of "A Rule-Based Query Rewriter in an
//! Extensible DBMS" (Finance & Gardarin, ICDE 1991)
//!
//! Thin facade over the workspace crates; see [`eds_core`] for the main
//! API and the repository README for the architecture overview.

#![warn(missing_docs)]

pub use eds_core::*;
