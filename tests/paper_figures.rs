//! Figure-by-figure artifact reproduction.
//!
//! Every figure of the paper is a language or rule artifact; this suite
//! asserts each one is reproduced by the public API. The table in
//! `DESIGN.md` §5 maps figures to modules; `EXPERIMENTS.md` records the
//! quantitative counterparts.

use eds_adt::{collection, CollKind, Type, Value};
use eds_core::{figure10_constraints, Dbms};
use eds_lera::Expr;
use eds_rewrite::{parse_source, SourceItem};

/// Figure 2 DDL, as printed in the paper (OCR glitches repaired).
const FIGURE2: &str =
    "TYPE Category ENUMERATION OF ('Comedy', 'Adventure', 'Science Fiction', 'Western') ;
     TYPE Point TUPLE (ABS : REAL, ORD : REAL) ;
     TYPE Person OBJECT TUPLE ( Name : CHAR, Firstname : SET OF CHAR,
                                Caricature : LIST OF Point) ;
     TYPE Actor SUBTYPE OF Person OBJECT TUPLE (Salary : NUMERIC)
       FUNCTION IncreaseSalary(This Actor, Val NUMERIC) ;
     TYPE Text LIST OF CHAR ;
     TYPE SetCategory SET OF Category ;
     TYPE Pairs LIST OF TUPLE (Pros : INT, Cons : INT) ;
     TABLE FILM ( Numf : NUMERIC, Title : CHAR, Categories : SetCategory) ;
     TABLE APPEARS_IN ( Numf : NUMERIC, Refactor : Actor) ;
     TABLE DOMINATE ( Numf : NUMERIC, Refactor1 : Actor, Refactor2 : Actor, Score : Pairs) ;";

fn film_dbms() -> Dbms {
    let mut dbms = Dbms::new().unwrap();
    dbms.execute_ddl(FIGURE2).unwrap();
    dbms
}

#[test]
fn figure1_generic_adt_hierarchy() {
    // The collection hierarchy with its function library: conversion,
    // emptiness, equality, insert/remove at the collection level; union,
    // intersection, difference, include, choice, member on sets; append
    // and access on lists.
    let dbms = film_dbms();
    let types = &dbms.db.catalog.types;
    let coll = Type::AnyColl(Box::new(Type::Any));
    for ty in [
        Type::set_of(Type::Int),
        Type::bag_of(Type::Int),
        Type::list_of(Type::Int),
        Type::array_of(Type::Int),
    ] {
        assert!(types.isa(&ty, &coll), "{ty} ISA collection");
    }
    // Figure-1 functions all registered.
    for f in [
        "CONVERT",
        "ISEMPTY",
        "EQUAL",
        "INSERT",
        "REMOVE",
        "MEMBER",
        "UNION",
        "INTERSECTION",
        "DIFFERENCE",
        "INCLUDE",
        "CHOICE",
        "APPEND",
        "NTH",
        "MAKESET",
        "ALL",
        "EXIST",
    ] {
        assert!(dbms.db.functions.contains(f), "missing builtin {f}");
    }
    // Convert bag -> set removes duplicates (the paper's example).
    let bag = Value::bag(vec![1.into(), 1.into(), 2.into()]);
    let set = collection::convert(&bag, CollKind::Set).unwrap();
    assert_eq!(set, Value::set(vec![1.into(), 2.into()]));
}

#[test]
fn figure2_schema_installs() {
    let dbms = film_dbms();
    let catalog = &dbms.db.catalog;
    assert_eq!(catalog.table("FILM").unwrap().arity(), 3);
    assert_eq!(catalog.table("DOMINATE").unwrap().arity(), 4);
    assert!(catalog.types.get("Actor").unwrap().is_object);
    assert_eq!(
        catalog.types.get("Actor").unwrap().supertype.as_deref(),
        Some("Person")
    );
    assert_eq!(
        catalog.types.get("Actor").unwrap().methods[0].name,
        "IncreaseSalary"
    );
    assert_eq!(catalog.types.enum_values("Category").unwrap().len(), 4);
}

#[test]
fn figure3_and_section31_translation() {
    // Section 3.1 shows the translation
    //   search((APPEARS-IN, FILM), [1.1=2.1 ∧ name(1.2)='Quinn'
    //          ∧ member('Adventure',2.3)], (2.2, 2.3, salary(1.2)))
    // Our FROM order is (FILM, APPEARS_IN), so indices mirror.
    let dbms = film_dbms();
    let prepared = dbms
        .prepare(
            "SELECT Title, Categories, Salary(Refactor) \
             FROM FILM, APPEARS_IN \
             WHERE FILM.Numf = APPEARS_IN.Numf \
             AND Name(Refactor) = 'Quinn' \
             AND MEMBER('Adventure', Categories) ;",
        )
        .unwrap();
    assert_eq!(
        prepared.expr.to_string(),
        "search((FILM, APPEARS_IN), \
         [1.1 = 2.1 ∧ PROJECT(VALUE(2.2), Name) = 'Quinn' ∧ MEMBER('Adventure', 1.3)], \
         (1.2, 1.3, PROJECT(VALUE(2.2), Salary)))"
    );
}

#[test]
fn figure4_nested_view_artifacts() {
    let mut dbms = film_dbms();
    dbms.execute_ddl(
        "CREATE VIEW FilmActors (Title, Categories, Actors) AS \
         SELECT Title, Categories, MakeSet(Refactor) \
         FROM FILM, APPEARS_IN WHERE FILM.Numf = APPEARS_IN.Numf \
         GROUP BY Title, Categories ;",
    )
    .unwrap();
    // The view's registered schema exposes a SET OF Actor attribute.
    let schema = dbms.db.catalog.relation("FilmActors").unwrap();
    assert_eq!(schema.columns[2].name, "Actors");
    assert_eq!(
        schema.columns[2].ty,
        Type::set_of(Type::Named("Actor".into()))
    );
    // The translation uses the nest operator.
    let prepared = dbms.prepare("SELECT Title FROM FilmActors ;").unwrap();
    let Expr::Search { inputs, .. } = &prepared.expr else {
        panic!("expected search")
    };
    assert!(matches!(&inputs[0], Expr::Nest { .. }));
}

#[test]
fn figure5_fixpoint_form() {
    // Section 3.2 shows
    //   fix(BETTER_THAN, union({DOMINATE,
    //       search((BETTER_THAN, BETTER_THAN), [1.2=2.1], (1.1, 2.2))}))
    let mut dbms = film_dbms();
    dbms.execute_ddl(
        "CREATE VIEW BETTER_THAN (Refactor1, Refactor2) AS \
         ( SELECT Refactor1, Refactor2 FROM DOMINATE \
           UNION \
           SELECT B1.Refactor1, B2.Refactor2 \
           FROM BETTER_THAN B1, BETTER_THAN B2 \
           WHERE B1.Refactor2 = B2.Refactor1 ) ;",
    )
    .unwrap();
    let prepared = dbms.prepare("SELECT Refactor1 FROM BETTER_THAN ;").unwrap();
    let Expr::Search { inputs, .. } = &prepared.expr else {
        panic!("expected search")
    };
    let rendered = inputs[0].to_string();
    assert!(
        rendered.starts_with("fix(BETTER_THAN, union({search((DOMINATE)"),
        "{rendered}"
    );
    assert!(
        rendered.contains("search((BETTER_THAN, BETTER_THAN), [1.2 = 2.1], (1.1, 2.2))"),
        "{rendered}"
    );
}

#[test]
fn figure6_rule_language_corpus() {
    // Every rule printed in the paper parses in our Figure-6 grammar
    // (modulo the documented notation mapping: attribute access is
    // PROJECT(x, A), set literals use {..}, methods carry the extra
    // context arguments the prose describes).
    let corpus = "\
        // Section 4.1 example rule\n\
        Example : F(SET(x*, G(y, f))) / MEMBER(y, x*), f = TRUE --> F(SET(x*)) / ;\n\
        // Figure 7\n\
        SearchMerging : SEARCH(LIST(x*, SEARCH(z, g, b), v*), f, a) / \
          --> SEARCH(APPEND(x*, z, v*), f' AND g', a') / \
          SUBSTITUTE(f, x*, z, b, f'), SUBSTITUTE(a, x*, z, b, a'), SHIFT(g, x*, g') ;\n\
        UnionMerging : UNION(SET(x*, UNION(z))) / --> UNION(SET_UNION(x*, z)) / ;\n\
        // Figure 8\n\
        SearchThroughUnion : SEARCH(LIST(x*, UNION(SET(u, v)), y*), f, a) / --> \
          UNION(SET(SEARCH(APPEND(x*, LIST(u), y*), f, a), \
                    SEARCH(APPEND(x*, LIST(v), y*), f, a))) / ;\n\
        // Figure 9\n\
        Alexander : SEARCH(LIST(x*, FIX(r, e), y*), f, a) / ADORNMENT(x*, r, f, s) \
          --> SEARCH(LIST(x*, u, y*), f', a) / ALEXANDER(r, e, x*, f, s, u, f') ;\n\
        // Figure 10\n\
        PointAbs : F(x) / ISA(x, Point) --> F(x) AND PROJECT(x, ABS) > 0 / ;\n\
        CategoryDom : F(x) / ISA(x, Category) --> \
          F(x) AND MEMBER(x, {'Comedy', 'Adventure', 'Science Fiction', 'Western'}) / ;\n\
        // Figure 11\n\
        EqTrans : x = y AND y = z / --> x = y AND y = z AND x = z / ;\n\
        IncTrans : INCLUDE(x, y) AND INCLUDE(y, z) / ISA(x, Set) AND ISA(y, Set) AND ISA(z, Set) \
          --> INCLUDE(x, y) AND INCLUDE(y, z) AND INCLUDE(x, z) / ;\n\
        // Figure 12\n\
        GtLe : x > y AND x <= y / --> TRUE / ;\n\
        AndFalse : f AND FALSE / --> FALSE / ;\n\
        DiffZero : x - y = 0 / ISA(x, constant), ISA(y, constant) --> x = y / ;\n\
        Fold : F(x, y) / ISA(x, constant), ISA(y, constant) --> a / EVALUATE(F(x, y), a) ;\n\
        // Section 4.2 meta-rules\n\
        block(rules1, {SearchMerging, UnionMerging}, 100) ;\n\
        block(rules2, {GtLe, AndFalse}, INF) ;\n\
        seq((rules1, rules2), 2) ;";
    let items = parse_source(corpus).unwrap();
    let rules = items
        .iter()
        .filter(|i| matches!(i, SourceItem::Rule(_)))
        .count();
    let blocks = items
        .iter()
        .filter(|i| matches!(i, SourceItem::Block(_)))
        .count();
    assert_eq!(rules, 13);
    assert_eq!(blocks, 2);
    assert!(items.iter().any(|i| matches!(i, SourceItem::Seq(_))));
}

#[test]
fn figure10_constraints_load_and_fire() {
    let mut dbms = film_dbms();
    assert_eq!(
        dbms.add_constraint_source(figure10_constraints()).unwrap(),
        3
    );
    assert_eq!(dbms.constraints.len(), 3);
    // Section 6.1: MEMBER('Cartoon', <Category domain>) is inconsistent.
    let sql = "SELECT Title FROM FILM \
               WHERE MEMBER('Cartoon', MAKESET('Comedy', 'Adventure', 'Science Fiction', 'Western')) ;";
    let rewritten = dbms.rewrite(&dbms.prepare(sql).unwrap()).unwrap();
    let Expr::Search { pred, .. } = &rewritten.expr else {
        panic!()
    };
    assert!(pred.is_false());
}

#[test]
fn figure6_rules_roundtrip_through_display() {
    // The knowledge base renders back into parseable rule language.
    let dbms = Dbms::new().unwrap();
    for rule in dbms.rewriter.rules().iter() {
        let rendered = format!("{rule} ;");
        let reparsed = parse_source(&rendered)
            .unwrap_or_else(|e| panic!("rule {} does not re-parse: {e}\n{rendered}", rule.name));
        let SourceItem::Rule(back) = &reparsed[0] else {
            panic!("expected rule")
        };
        assert_eq!(&back.lhs, &rule.lhs, "lhs of {}", rule.name);
        assert_eq!(&back.rhs, &rule.rhs, "rhs of {}", rule.name);
    }
}

#[test]
fn builtin_knowledge_base_inventory() {
    // The default optimizer: 6 rule files, 6 blocks, 1 sequence.
    let dbms = Dbms::new().unwrap();
    assert!(
        dbms.rewriter.rules().len() >= 30,
        "rules: {}",
        dbms.rewriter.rules().len()
    );
    let blocks: Vec<&str> = dbms
        .rewriter
        .strategy()
        .blocks()
        .map(|b| b.name.as_str())
        .collect();
    for expected in [
        "normalize",
        "merging",
        "fixpoint",
        "permutation",
        "semantic",
        "simplify",
    ] {
        assert!(blocks.contains(&expected), "missing block {expected}");
    }
    let seq = dbms.rewriter.strategy().sequence.as_ref().unwrap();
    assert!(
        seq.blocks
            .iter()
            .filter(|b| b.as_str() == "merging")
            .count()
            >= 2,
        "merging must appear more than once in the default sequence"
    );
}
