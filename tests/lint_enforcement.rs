//! `EDS_LINT` environment-policy enforcement, isolated in its own test
//! binary: these are the only tests in the workspace that mutate the
//! process environment, so they cannot race with tests that register
//! rules under the default policy.
//!
//! Everything runs in ONE #[test] because `std::env::set_var` is
//! process-global and the harness runs tests in threads.

use eds_core::{CoreError, Dbms};

#[test]
fn env_policy_drives_the_registration_gate() {
    let broken = "Broken : SEARCH(l, f, a) / --> SEARCH(l, ghost, a) / ;";

    // deny: registration fails with the diagnostics, nothing commits.
    std::env::set_var("EDS_LINT", "deny");
    let mut dbms = Dbms::new().unwrap();
    let err = dbms.add_rule_source(broken).unwrap_err();
    match err {
        CoreError::LintRejected { diagnostics } => {
            assert!(diagnostics.iter().any(|d| d.code == "EDS001"));
        }
        other => panic!("expected LintRejected under EDS_LINT=deny, got {other}"),
    }
    assert!(dbms.rewriter.rules().get("Broken").is_none());

    // warn (default): reports to stderr but accepts — the pre-PR
    // behavior for well-meaning-but-wrong rules is preserved.
    std::env::set_var("EDS_LINT", "warn");
    let mut dbms = Dbms::new().unwrap();
    dbms.add_rule_source(broken).expect("warn must accept");
    assert!(dbms.rewriter.rules().get("Broken").is_some());

    // off: no analysis at all.
    std::env::set_var("EDS_LINT", "off");
    let mut dbms = Dbms::new().unwrap();
    dbms.add_rule_source(broken).expect("off must accept");

    // Unknown values fall back to warn (accept).
    std::env::set_var("EDS_LINT", "bogus");
    let mut dbms = Dbms::new().unwrap();
    dbms.add_rule_source(broken).expect("unknown value = warn");

    std::env::remove_var("EDS_LINT");
}
