//! Randomized tests of the system's core invariants:
//!
//! 1. **Rewriting preserves results** — for randomly generated databases
//!    and queries, the rewritten plan returns the same relation as the
//!    canonical plan (the rewriter's fundamental contract).
//! 2. **Fixpoint strategies agree** — semi-naive and naive evaluation of
//!    random recursive queries produce identical closures.
//! 3. **Term bridge round-trips** — random LERA plans survive
//!    `expr → term → expr` unchanged.
//! 4. **Matcher soundness** — every match reported for a random
//!    segment pattern reconstructs the subject when substituted back.
//!
//! Each property runs a fixed number of seeded random cases.

use eds_core::Dbms;
use eds_engine::{EvalOptions, FixMode, FixOptions};
use eds_lera::{expr_from_term, expr_to_term, CmpOp, Expr, Scalar};
use eds_rewrite::{all_matches, Term};
use eds_testkit::StdRng;

// ------------------------------------------------------------ workloads

fn small_db(rows_a: &[(i64, i64)], rows_b: &[(i64, i64)]) -> Dbms {
    let mut dbms = Dbms::new().unwrap();
    dbms.execute_ddl(
        "TABLE RA (X : INT, Y : INT); TABLE RB (X : INT, Y : INT);
         CREATE VIEW VA (X, Y) AS SELECT X, Y FROM RA WHERE X >= 0 ;
         CREATE VIEW VU (X, Y) AS
           ( SELECT X, Y FROM RA UNION SELECT X, Y FROM RB ) ;",
    )
    .unwrap();
    for &(x, y) in rows_a {
        dbms.insert("RA", vec![x.into(), y.into()]).unwrap();
    }
    for &(x, y) in rows_b {
        dbms.insert("RB", vec![x.into(), y.into()]).unwrap();
    }
    dbms
}

fn random_rows(rng: &mut StdRng) -> Vec<(i64, i64)> {
    let n = rng.gen_range(0usize..25);
    (0..n)
        .map(|_| (rng.gen_range(0i64..20), rng.gen_range(-5i64..15)))
        .collect()
}

/// A small pool of query shapes parameterized by constants.
fn random_query(rng: &mut StdRng) -> String {
    let c1 = rng.gen_range(0i64..20);
    let c2 = rng.gen_range(-5i64..15);
    match rng.gen_range(0usize..9) {
        0 => format!("SELECT X FROM RA WHERE X = {c1} ;"),
        1 => format!("SELECT X, Y FROM VA WHERE Y < {c2} AND X <> {c1} ;"),
        2 => format!("SELECT RA.X FROM RA, RB WHERE RA.X = RB.X AND RB.Y > {c2} ;"),
        3 => format!("SELECT X FROM VU WHERE X = {c1} ;"),
        4 => format!("SELECT X FROM VA WHERE X = {c1} AND X = {} ;", c1 + 1),
        5 => format!("SELECT A.X FROM VA A, VU B WHERE A.X = B.X AND A.Y = {c2} ;"),
        6 => format!("SELECT DISTINCT Y FROM VU WHERE Y >= {c2} ;"),
        7 => format!("SELECT X, SUM(MakeBag(Y)) FROM RA WHERE Y > {c2} GROUP BY X ;"),
        _ => format!("SELECT X FROM RA WHERE X IN (SELECT X FROM RB) AND Y <> {c2} ;"),
    }
}

#[test]
fn join_modes_agree() {
    use eds_engine::JoinMode;
    let mut rng = StdRng::seed_from_u64(0xE0_0001);
    for _ in 0..48 {
        let rows_a = random_rows(&mut rng);
        let rows_b = random_rows(&mut rng);
        let sql = random_query(&mut rng);
        let dbms = small_db(&rows_a, &rows_b);
        let prepared = dbms.prepare(&sql).unwrap();
        let nested = eds_engine::eval_with(&prepared.expr, &dbms.db, EvalOptions::default())
            .unwrap()
            .0;
        let hashed = eds_engine::eval_with(
            &prepared.expr,
            &dbms.db,
            EvalOptions {
                join: JoinMode::Hash,
                ..Default::default()
            },
        )
        .unwrap()
        .0;
        assert!(
            nested.bag_eq(&hashed),
            "join modes disagree on {sql}: {:?} vs {:?}",
            nested.sorted_rows(),
            hashed.sorted_rows()
        );
    }
}

#[test]
fn rewriting_preserves_results() {
    let mut rng = StdRng::seed_from_u64(0xE0_0002);
    for _ in 0..48 {
        let rows_a = random_rows(&mut rng);
        let rows_b = random_rows(&mut rng);
        let sql = random_query(&mut rng);
        let dbms = small_db(&rows_a, &rows_b);
        let baseline = dbms.query_unoptimized(&sql).unwrap();
        let optimized = dbms.query(&sql).unwrap();
        assert!(
            baseline.set_eq(&optimized),
            "rewrite changed results of {sql}: {:?} vs {:?}",
            baseline.sorted_rows(),
            optimized.sorted_rows()
        );
    }
}

#[test]
fn fixpoint_strategies_agree() {
    let mut rng = StdRng::seed_from_u64(0xE0_0003);
    for _ in 0..48 {
        let n_edges = rng.gen_range(1usize..20);
        let edges: Vec<(i64, i64)> = (0..n_edges)
            .map(|_| (rng.gen_range(0i64..12), rng.gen_range(0i64..12)))
            .collect();
        let src = rng.gen_range(0i64..12);
        let mut dbms = Dbms::new().unwrap();
        dbms.execute_ddl(
            "TABLE EDGE (S : INT, D : INT);
             CREATE VIEW TC (S, D) AS
             ( SELECT S, D FROM EDGE
               UNION SELECT A.S, B.D FROM TC A, TC B WHERE A.D = B.S ) ;",
        )
        .unwrap();
        for (s, d) in &edges {
            dbms.insert("EDGE", vec![(*s).into(), (*d).into()]).unwrap();
        }
        let sql = format!("SELECT D FROM TC WHERE S = {src} ;");
        let prepared = dbms.prepare(&sql).unwrap();
        let rewritten = dbms.rewrite(&prepared).unwrap();

        let mut results = Vec::new();
        for mode in [FixMode::Naive, FixMode::SemiNaive] {
            for expr in [&prepared.expr, &rewritten.expr] {
                let (rel, _) = eds_engine::eval_with(
                    expr,
                    &dbms.db,
                    EvalOptions {
                        fix: FixOptions {
                            mode,
                            max_iterations: 10_000,
                        },
                        ..Default::default()
                    },
                )
                .unwrap();
                results.push(rel.sorted_rows());
            }
        }
        for r in &results[1..] {
            assert_eq!(r, &results[0]);
        }
    }
}

// --------------------------- semantic-rule soundness on random filters

/// Random conjunctions of comparisons between two columns and constants:
/// the EQSUBST / TRANSITIVITY / SIMPLIFYQ chain must never change which
/// rows qualify — even when it proves the qualification inconsistent.
fn random_conjunction(rng: &mut StdRng) -> String {
    const COLS: &[&str] = &["X", "Y"];
    const OPS: &[&str] = &["=", "<>", "<", ">", "<=", ">="];
    let n = rng.gen_range(1usize..6);
    (0..n)
        .map(|_| {
            let l = *rng.choose(COLS).unwrap();
            let op = *rng.choose(OPS).unwrap();
            let r = match rng.gen_range(0u32..3) {
                0 => rng.gen_range(-4i64..8).to_string(),
                1 => "X".to_owned(),
                _ => "Y".to_owned(),
            };
            format!("{l} {op} {r}")
        })
        .collect::<Vec<_>>()
        .join(" AND ")
}

#[test]
fn semantic_rules_preserve_filter_semantics() {
    let mut rng = StdRng::seed_from_u64(0xE0_0004);
    for _ in 0..64 {
        let n_rows = rng.gen_range(0usize..15);
        let rows: Vec<(i64, i64)> = (0..n_rows)
            .map(|_| (rng.gen_range(-4i64..8), rng.gen_range(-4i64..8)))
            .collect();
        let cond = random_conjunction(&mut rng);
        let mut dbms = Dbms::new().unwrap();
        dbms.execute_ddl("TABLE T (X : INT, Y : INT);").unwrap();
        for (x, y) in &rows {
            dbms.insert("T", vec![(*x).into(), (*y).into()]).unwrap();
        }
        let sql = format!("SELECT X, Y FROM T WHERE {cond} ;");
        let baseline = dbms.query_unoptimized(&sql).unwrap();
        let optimized = dbms.query(&sql).unwrap();
        assert!(
            baseline.set_eq(&optimized),
            "semantic rules changed {sql}: {:?} vs {:?}",
            baseline.sorted_rows(),
            optimized.sorted_rows()
        );
    }
}

// --------------------------------------------- term bridge round-trips

fn random_scalar(rng: &mut StdRng, depth: u32) -> Scalar {
    if depth == 0 || rng.gen_bool(0.35) {
        return match rng.gen_range(0u32..3) {
            0 => Scalar::attr(rng.gen_range(1usize..3), rng.gen_range(1usize..4)),
            1 => Scalar::lit(rng.gen_range(-50i64..50)),
            _ => Scalar::lit(*rng.choose(&["a", "b", "Quinn"]).unwrap()),
        };
    }
    match rng.gen_range(0u32..6) {
        0 => {
            let op = *rng.choose(&[CmpOp::Eq, CmpOp::Lt, CmpOp::Ge]).unwrap();
            Scalar::cmp(
                op,
                random_scalar(rng, depth - 1),
                random_scalar(rng, depth - 1),
            )
        }
        1 => Scalar::and(random_scalar(rng, depth - 1), random_scalar(rng, depth - 1)),
        2 => Scalar::Or(
            Box::new(random_scalar(rng, depth - 1)),
            Box::new(random_scalar(rng, depth - 1)),
        ),
        3 => Scalar::Not(Box::new(random_scalar(rng, depth - 1))),
        4 => {
            let n = rng.gen_range(0usize..3);
            Scalar::call(
                "MEMBER2",
                (0..n).map(|_| random_scalar(rng, depth - 1)).collect(),
            )
        }
        _ => Scalar::field(random_scalar(rng, depth - 1), "Salary"),
    }
}

fn random_expr(rng: &mut StdRng, depth: u32) -> Expr {
    if depth == 0 || rng.gen_bool(0.3) {
        return Expr::base(*rng.choose(&["R", "S", "T"]).unwrap());
    }
    match rng.gen_range(0u32..7) {
        0 => {
            let n_in = rng.gen_range(1usize..3);
            let n_proj = rng.gen_range(1usize..3);
            Expr::Search {
                inputs: (0..n_in).map(|_| random_expr(rng, depth - 1)).collect(),
                pred: random_scalar(rng, 3),
                proj: (0..n_proj).map(|_| random_scalar(rng, 3)).collect(),
            }
        }
        1 => Expr::Filter {
            input: Box::new(random_expr(rng, depth - 1)),
            pred: random_scalar(rng, 3),
        },
        2 => {
            let n = rng.gen_range(1usize..4);
            Expr::Union((0..n).map(|_| random_expr(rng, depth - 1)).collect())
        }
        3 => Expr::Difference(
            Box::new(random_expr(rng, depth - 1)),
            Box::new(random_expr(rng, depth - 1)),
        ),
        4 => Expr::Fix {
            name: "V".into(),
            body: Box::new(random_expr(rng, depth - 1)),
        },
        5 => Expr::Nest {
            input: Box::new(random_expr(rng, depth - 1)),
            group: vec![1],
            nested: vec![2],
            kind: eds_adt::CollKind::Set,
        },
        _ => Expr::Dedup(Box::new(random_expr(rng, depth - 1))),
    }
}

#[test]
fn term_bridge_roundtrips() {
    let mut rng = StdRng::seed_from_u64(0xE0_0005);
    for _ in 0..128 {
        let expr = random_expr(&mut rng, 3);
        let term = expr_to_term(&expr);
        let back = expr_from_term(&term).unwrap();
        // Round-trip is exact up to functor-name canonicalization, which
        // a second trip makes stable.
        assert_eq!(expr_to_term(&back), term);
    }
}

#[test]
fn matcher_matches_reconstruct_subject() {
    let mut rng = StdRng::seed_from_u64(0xE0_0006);
    for _ in 0..128 {
        let n = rng.gen_range(0usize..7);
        let subject = Term::list(
            (0..n)
                .map(|_| Term::atom(*rng.choose(&["A", "B", "C"]).unwrap()))
                .collect(),
        );
        let pattern = Term::list(vec![Term::seq("x"), Term::var("v"), Term::seq("y")]);
        for binding in all_matches(&pattern, &subject) {
            let rebuilt = binding.apply(&pattern);
            assert_eq!(&rebuilt, &subject);
        }
    }
}

#[test]
fn set_matcher_finds_all_elements() {
    let mut rng = StdRng::seed_from_u64(0xE0_0007);
    for _ in 0..128 {
        let n = rng.gen_range(1usize..8);
        let atoms: Vec<i64> = (0..n).map(|_| rng.gen_range(0i64..100)).collect();
        let subject = Term::set(atoms.iter().map(|i| Term::int(*i)).collect());
        let pattern = Term::set(vec![Term::seq("x"), Term::var("v")]);
        let matches = all_matches(&pattern, &subject);
        // One match per element choice.
        assert_eq!(matches.len(), atoms.len());
    }
}
