//! Property-based tests of the system's core invariants:
//!
//! 1. **Rewriting preserves results** — for randomly generated databases
//!    and queries, the rewritten plan returns the same relation as the
//!    canonical plan (the rewriter's fundamental contract).
//! 2. **Fixpoint strategies agree** — semi-naive and naive evaluation of
//!    random recursive queries produce identical closures.
//! 3. **Term bridge round-trips** — random LERA plans survive
//!    `expr → term → expr` unchanged.
//! 4. **Matcher soundness** — every match reported for a random
//!    segment pattern reconstructs the subject when substituted back.

use eds_core::Dbms;
use eds_engine::{EvalOptions, FixMode, FixOptions};
use eds_lera::{expr_from_term, expr_to_term, CmpOp, Expr, Scalar};
use eds_rewrite::{all_matches, Term};
use proptest::prelude::*;

// ------------------------------------------------------------ workloads

fn small_db(rows_a: &[(i64, i64)], rows_b: &[(i64, i64)]) -> Dbms {
    let mut dbms = Dbms::new().unwrap();
    dbms.execute_ddl(
        "TABLE RA (X : INT, Y : INT); TABLE RB (X : INT, Y : INT);
         CREATE VIEW VA (X, Y) AS SELECT X, Y FROM RA WHERE X >= 0 ;
         CREATE VIEW VU (X, Y) AS
           ( SELECT X, Y FROM RA UNION SELECT X, Y FROM RB ) ;",
    )
    .unwrap();
    for &(x, y) in rows_a {
        dbms.insert("RA", vec![x.into(), y.into()]).unwrap();
    }
    for &(x, y) in rows_b {
        dbms.insert("RB", vec![x.into(), y.into()]).unwrap();
    }
    dbms
}

fn row_strategy() -> impl Strategy<Value = Vec<(i64, i64)>> {
    prop::collection::vec((0i64..20, -5i64..15), 0..25)
}

/// A small pool of query shapes parameterized by constants.
fn query_strategy() -> impl Strategy<Value = String> {
    (
        0i64..20,
        -5i64..15,
        prop::sample::select(vec![0usize, 1, 2, 3, 4, 5, 6, 7, 8]),
    )
        .prop_map(|(c1, c2, shape)| match shape {
            0 => format!("SELECT X FROM RA WHERE X = {c1} ;"),
            1 => format!("SELECT X, Y FROM VA WHERE Y < {c2} AND X <> {c1} ;"),
            2 => format!("SELECT RA.X FROM RA, RB WHERE RA.X = RB.X AND RB.Y > {c2} ;"),
            3 => format!("SELECT X FROM VU WHERE X = {c1} ;"),
            4 => format!("SELECT X FROM VA WHERE X = {c1} AND X = {} ;", c1 + 1),
            5 => format!("SELECT A.X FROM VA A, VU B WHERE A.X = B.X AND A.Y = {c2} ;"),
            6 => format!("SELECT DISTINCT Y FROM VU WHERE Y >= {c2} ;"),
            7 => format!("SELECT X, SUM(MakeBag(Y)) FROM RA WHERE Y > {c2} GROUP BY X ;"),
            _ => format!("SELECT X FROM RA WHERE X IN (SELECT X FROM RB) AND Y <> {c2} ;"),
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn join_modes_agree(
        rows_a in row_strategy(),
        rows_b in row_strategy(),
        sql in query_strategy(),
    ) {
        use eds_engine::JoinMode;
        let dbms = small_db(&rows_a, &rows_b);
        let prepared = dbms.prepare(&sql).unwrap();
        let nested = eds_engine::eval_with(
            &prepared.expr, &dbms.db, EvalOptions::default()
        ).unwrap().0;
        let hashed = eds_engine::eval_with(
            &prepared.expr,
            &dbms.db,
            EvalOptions { join: JoinMode::Hash, ..Default::default() },
        ).unwrap().0;
        prop_assert!(
            nested.bag_eq(&hashed),
            "join modes disagree on {sql}: {:?} vs {:?}",
            nested.sorted_rows(),
            hashed.sorted_rows()
        );
    }

    #[test]
    fn rewriting_preserves_results(
        rows_a in row_strategy(),
        rows_b in row_strategy(),
        sql in query_strategy(),
    ) {
        let dbms = small_db(&rows_a, &rows_b);
        let baseline = dbms.query_unoptimized(&sql).unwrap();
        let optimized = dbms.query(&sql).unwrap();
        prop_assert!(
            baseline.set_eq(&optimized),
            "rewrite changed results of {sql}: {:?} vs {:?}",
            baseline.sorted_rows(),
            optimized.sorted_rows()
        );
    }

    #[test]
    fn fixpoint_strategies_agree(
        edges in prop::collection::vec((0i64..12, 0i64..12), 1..20),
        src in 0i64..12,
    ) {
        let mut dbms = Dbms::new().unwrap();
        dbms.execute_ddl(
            "TABLE EDGE (S : INT, D : INT);
             CREATE VIEW TC (S, D) AS
             ( SELECT S, D FROM EDGE
               UNION SELECT A.S, B.D FROM TC A, TC B WHERE A.D = B.S ) ;",
        ).unwrap();
        for (s, d) in &edges {
            dbms.insert("EDGE", vec![(*s).into(), (*d).into()]).unwrap();
        }
        let sql = format!("SELECT D FROM TC WHERE S = {src} ;");
        let prepared = dbms.prepare(&sql).unwrap();
        let rewritten = dbms.rewrite(&prepared).unwrap();

        let mut results = Vec::new();
        for mode in [FixMode::Naive, FixMode::SemiNaive] {
            for expr in [&prepared.expr, &rewritten.expr] {
                let (rel, _) = eds_engine::eval_with(
                    expr,
                    &dbms.db,
                    EvalOptions { fix: FixOptions { mode, max_iterations: 10_000 }, ..Default::default() },
                ).unwrap();
                results.push(rel.sorted_rows());
            }
        }
        for r in &results[1..] {
            prop_assert_eq!(r, &results[0]);
        }
    }
}

// --------------------------- semantic-rule soundness on random filters

/// Random conjunctions of comparisons between two columns and constants:
/// the EQSUBST / TRANSITIVITY / SIMPLIFYQ chain must never change which
/// rows qualify — even when it proves the qualification inconsistent.
fn conjunct_strategy() -> impl Strategy<Value = String> {
    let atom = (
        prop::sample::select(vec!["X", "Y"]),
        prop::sample::select(vec!["=", "<>", "<", ">", "<=", ">="]),
        prop_oneof![
            (-4i64..8).prop_map(|c| c.to_string()),
            Just("X".to_owned()),
            Just("Y".to_owned()),
        ],
    )
        .prop_map(|(l, op, r)| format!("{l} {op} {r}"));
    prop::collection::vec(atom, 1..6).prop_map(|cs| cs.join(" AND "))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn semantic_rules_preserve_filter_semantics(
        rows in prop::collection::vec((-4i64..8, -4i64..8), 0..15),
        cond in conjunct_strategy(),
    ) {
        let mut dbms = Dbms::new().unwrap();
        dbms.execute_ddl("TABLE T (X : INT, Y : INT);").unwrap();
        for (x, y) in &rows {
            dbms.insert("T", vec![(*x).into(), (*y).into()]).unwrap();
        }
        let sql = format!("SELECT X, Y FROM T WHERE {cond} ;");
        let baseline = dbms.query_unoptimized(&sql).unwrap();
        let optimized = dbms.query(&sql).unwrap();
        prop_assert!(
            baseline.set_eq(&optimized),
            "semantic rules changed {sql}: {:?} vs {:?}",
            baseline.sorted_rows(),
            optimized.sorted_rows()
        );
    }
}

// --------------------------------------------- term bridge round-trips

fn scalar_strategy() -> impl Strategy<Value = Scalar> {
    let leaf = prop_oneof![
        (1usize..3, 1usize..4).prop_map(|(r, a)| Scalar::attr(r, a)),
        (-50i64..50).prop_map(Scalar::lit),
        prop::sample::select(vec!["a", "b", "Quinn"]).prop_map(Scalar::lit),
    ];
    leaf.prop_recursive(3, 24, 3, |inner| {
        prop_oneof![
            (
                inner.clone(),
                inner.clone(),
                prop::sample::select(vec![CmpOp::Eq, CmpOp::Lt, CmpOp::Ge])
            )
                .prop_map(|(l, r, op)| Scalar::cmp(op, l, r)),
            (inner.clone(), inner.clone()).prop_map(|(l, r)| Scalar::and(l, r)),
            (inner.clone(), inner.clone()).prop_map(|(l, r)| Scalar::Or(Box::new(l), Box::new(r))),
            inner.clone().prop_map(|e| Scalar::Not(Box::new(e))),
            prop::collection::vec(inner.clone(), 0..3)
                .prop_map(|args| Scalar::call("MEMBER2", args)),
            inner.clone().prop_map(|e| Scalar::field(e, "Salary")),
        ]
    })
}

fn expr_strategy() -> impl Strategy<Value = Expr> {
    let leaf = prop::sample::select(vec!["R", "S", "T"]).prop_map(Expr::base);
    leaf.prop_recursive(3, 16, 3, move |inner| {
        prop_oneof![
            (
                prop::collection::vec(inner.clone(), 1..3),
                scalar_strategy(),
                prop::collection::vec(scalar_strategy(), 1..3)
            )
                .prop_map(|(inputs, pred, proj)| Expr::Search { inputs, pred, proj }),
            (inner.clone(), scalar_strategy()).prop_map(|(input, pred)| Expr::Filter {
                input: Box::new(input),
                pred,
            }),
            prop::collection::vec(inner.clone(), 1..4).prop_map(Expr::Union),
            (inner.clone(), inner.clone())
                .prop_map(|(a, b)| Expr::Difference(Box::new(a), Box::new(b))),
            inner.clone().prop_map(|e| Expr::Fix {
                name: "V".into(),
                body: Box::new(e),
            }),
            inner.clone().prop_map(|e| Expr::Nest {
                input: Box::new(e),
                group: vec![1],
                nested: vec![2],
                kind: eds_adt::CollKind::Set,
            }),
            inner.clone().prop_map(|e| Expr::Dedup(Box::new(e))),
        ]
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn term_bridge_roundtrips(expr in expr_strategy()) {
        let term = expr_to_term(&expr);
        let back = expr_from_term(&term).unwrap();
        // Round-trip is exact up to functor-name canonicalization, which
        // a second trip makes stable.
        prop_assert_eq!(expr_to_term(&back), term);
    }

    #[test]
    fn matcher_matches_reconstruct_subject(
        atoms in prop::collection::vec(prop::sample::select(vec!["A", "B", "C"]), 0..7)
    ) {
        let subject = Term::list(atoms.iter().map(|a| Term::atom(*a)).collect());
        let pattern = Term::list(vec![Term::seq("x"), Term::var("v"), Term::seq("y")]);
        for binding in all_matches(&pattern, &subject) {
            let rebuilt = binding.apply(&pattern);
            prop_assert_eq!(&rebuilt, &subject);
        }
    }

    #[test]
    fn set_matcher_finds_all_elements(
        atoms in prop::collection::vec(0i64..100, 1..8)
    ) {
        let subject = Term::set(atoms.iter().map(|i| Term::int(*i)).collect());
        let pattern = Term::set(vec![Term::seq("x"), Term::var("v")]);
        let matches = all_matches(&pattern, &subject);
        // One match per element choice.
        prop_assert_eq!(matches.len(), atoms.len());
    }
}
