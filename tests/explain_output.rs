//! The EXPLAIN surface: before/after plans plus the rule-application
//! trace — the observability the paper's "trace of what fired" story
//! needs.

use eds_core::Dbms;

fn dbms() -> Dbms {
    let mut dbms = Dbms::new().unwrap();
    dbms.execute_ddl(
        "TABLE T (X : INT, Y : INT);
         CREATE VIEW V (X, Y) AS SELECT X, Y FROM T WHERE X > 0 ;
         INSERT INTO T VALUES (1, 2), (3, 4);",
    )
    .unwrap();
    dbms
}

#[test]
fn explain_shows_both_plans_and_the_trace() {
    let dbms = dbms();
    let out = dbms
        .explain("SELECT Y FROM V WHERE X = 1 AND 2 + 2 = 4 ;")
        .unwrap();
    assert!(out.contains("-- canonical plan --"));
    assert!(out.contains("-- rewritten plan --"));
    // The view must appear unmerged before and be gone after.
    let (before, after) = out.split_once("-- rewritten plan --").unwrap();
    assert!(before.matches("search").count() >= 2, "{before}");
    assert!(after.contains("T"), "{after}");
    // The trace names the rules that fired, with their blocks.
    assert!(out.contains("[merging] SearchMerge"), "{out}");
    assert!(out.contains("rule applications"), "{out}");
}

#[test]
fn trace_records_every_application_in_order() {
    let dbms = dbms();
    let prepared = dbms.prepare("SELECT Y FROM V WHERE X = 1 ;").unwrap();
    let mut tracing = dbms.rewriter.clone();
    tracing.collect_trace = true;
    let outcome = tracing
        .rewrite(&prepared.expr, &dbms.db, &dbms.constraints)
        .unwrap();
    let events = outcome.trace.events();
    assert_eq!(events.len() as u64, outcome.stats.applications);
    assert!(outcome.trace.count_rule("SearchMerge") >= 1);
    // Events carry positions and size deltas.
    for e in events {
        assert!(!e.rule.is_empty() && !e.block.is_empty());
        assert!(e.before_size > 0 && e.after_size > 0);
    }
}

#[test]
fn tracing_off_by_default_keeps_outcome_lean() {
    let dbms = dbms();
    let prepared = dbms.prepare("SELECT Y FROM V WHERE X = 1 ;").unwrap();
    let outcome = dbms.rewrite(&prepared).unwrap();
    assert!(outcome.trace.events().is_empty());
    assert!(outcome.stats.applications > 0);
}
