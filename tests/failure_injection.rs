//! Failure injection: malformed inputs, looping rules, divergent
//! fixpoints — every error path must fail cleanly with a diagnosable
//! error, never panic or loop.

use eds_adt::Value;
use eds_core::{CoreError, Dbms};
use eds_engine::{EngineError, EvalOptions, FixMode, FixOptions};
use eds_esql::EsqlError;
use eds_rewrite::{Limit, RewriteError};

#[test]
fn malformed_rule_sources_rejected_with_position() {
    let mut dbms = Dbms::new().unwrap();
    for bad in [
        "NoColon F(x) --> x / ;",
        "NoArrow : F(x) / TRUE ;",
        "Unterminated : F(x) / --> x / ",
        "BadString : F('oops) / --> x / ;",
        "StrayStar : F(*) / --> x / ;",
        "block(missing_brace, SearchMerge}, INF) ;",
        "seq(no_parens, 2) ;",
    ] {
        let err = dbms.add_rule_source(bad).unwrap_err();
        assert!(
            matches!(err, CoreError::Rewrite(RewriteError::Parse { .. })),
            "{bad:?} gave {err:?}"
        );
    }
}

#[test]
fn malformed_esql_rejected() {
    let dbms = Dbms::new().unwrap();
    for bad in [
        "SELECT FROM T ;",
        "SELECT X T ;",
        "SELECT X FROM ;",
        "TABLE (X INT);",
        "SELECT X FROM T WHERE ;",
    ] {
        assert!(dbms.prepare(bad).is_err(), "{bad:?} should be rejected");
    }
}

#[test]
fn unknown_names_reported() {
    let mut dbms = Dbms::new().unwrap();
    dbms.execute_ddl("TABLE T (X : INT);").unwrap();
    let err = dbms.prepare("SELECT X FROM MISSING ;").unwrap_err();
    assert!(matches!(
        err,
        CoreError::Lera(eds_lera::LeraError::UnknownRelation(_))
    ));
    let err = dbms.prepare("SELECT NOPE FROM T ;").unwrap_err();
    assert!(matches!(
        err,
        CoreError::Lera(eds_lera::LeraError::Esql(EsqlError::UnknownColumn { .. }))
    ));
}

#[test]
fn looping_user_rule_is_stopped_by_block_limit() {
    let mut dbms = Dbms::new().unwrap();
    dbms.execute_ddl("TABLE T (X : INT);").unwrap();
    // A strictly growing rule: would run forever under saturation.
    dbms.add_rule_source(
        "Loop : SEARCH(l, f, a) / --> SEARCH(l, f AND TRUE, a) / ;\n\
         block(looping, {Loop}, 50) ;\n\
         seq((looping), 1) ;",
    )
    .unwrap();
    let prepared = dbms.prepare("SELECT X FROM T WHERE X = 1 ;").unwrap();
    let rewritten = dbms.rewrite(&prepared).unwrap();
    assert!(rewritten.budget_exhausted, "limit must trip");
    assert!(rewritten.stats.condition_checks <= 50);
}

#[test]
fn divergent_fixpoint_hits_iteration_bound() {
    let mut dbms = Dbms::new().unwrap();
    dbms.execute_ddl(
        "TABLE SEEDS (X : INT);
         CREATE VIEW NATS (X) AS
         ( SELECT X FROM SEEDS UNION SELECT X + 1 FROM NATS ) ;",
    )
    .unwrap();
    dbms.insert("SEEDS", vec![0.into()]).unwrap();
    dbms.eval_options = EvalOptions {
        fix: FixOptions {
            mode: FixMode::SemiNaive,
            max_iterations: 25,
        },
        ..Default::default()
    };
    let prepared = dbms.prepare("SELECT X FROM NATS ;").unwrap();
    let err = dbms.run_expr(&prepared.expr).unwrap_err();
    assert!(
        matches!(
            err,
            CoreError::Engine(EngineError::FixpointDiverged { limit: 25, .. })
        ),
        "{err:?}"
    );
}

#[test]
fn arity_and_unknown_function_errors() {
    let mut dbms = Dbms::new().unwrap();
    dbms.execute_ddl("TABLE T (X : INT);").unwrap();
    dbms.insert("T", vec![1.into()]).unwrap();
    // Unknown function reaches the engine and fails cleanly.
    let err = dbms
        .query("SELECT X FROM T WHERE NOSUCHFN(X) = 1 ;")
        .unwrap_err();
    assert!(matches!(
        err,
        CoreError::Engine(EngineError::Adt(eds_adt::AdtError::UnknownFunction(_)))
    ));
    // Wrong arity on a builtin.
    let err = dbms.query("SELECT X FROM T WHERE MEMBER(X) ;").unwrap_err();
    assert!(matches!(
        err,
        CoreError::Engine(EngineError::Adt(eds_adt::AdtError::Arity { .. }))
    ));
}

#[test]
fn bad_constraint_shapes_rejected() {
    let mut dbms = Dbms::new().unwrap();
    for bad in [
        "C : G(x) / ISA(x, INT) --> G(x) AND x > 0 / ;", // lhs not F(x)
        "C : F(x) / --> F(x) AND x > 0 / ;",             // no ISA
        "C : F(x) / ISA(x, INT) --> x > 0 / ;",          // rhs not F(x) AND p
        "C : F(x) / ISA(x, INT) --> F(x) AND y > 0 / ;", // foreign var
        "block(b, {C}, INF) ;",                          // meta item
    ] {
        let err = dbms.add_constraint_source(bad).unwrap_err();
        assert!(
            matches!(err, CoreError::BadConstraintRule { .. }),
            "{bad:?} gave {err:?}"
        );
    }
}

#[test]
fn rule_with_unbindable_rhs_fails_at_application_not_load() {
    let mut dbms = Dbms::new().unwrap();
    dbms.execute_ddl("TABLE T (X : INT);").unwrap();
    dbms.add_rule_source(
        "Broken : SEARCH(l, f, a) / --> SEARCH(l, ghost, a) / ;\n\
         block(broken, {Broken}, INF) ;\n\
         seq((broken), 1) ;",
    )
    .unwrap();
    let prepared = dbms.prepare("SELECT X FROM T ;").unwrap();
    let err = dbms.rewrite(&prepared).unwrap_err();
    assert!(
        matches!(
            err,
            CoreError::Rewrite(RewriteError::UnboundInRhs { ref rule, .. }) if rule == "Broken"
        ),
        "{err:?}"
    );
}

#[test]
fn dangling_object_reference_fails_at_eval() {
    let mut dbms = Dbms::new().unwrap();
    dbms.execute_ddl(
        "TYPE P OBJECT TUPLE (N : CHAR);
         TABLE T (R : P);",
    )
    .unwrap();
    let obj = dbms.create_object("P", Value::Tuple(vec![Value::str("x")]));
    dbms.insert("T", vec![obj.clone()]).unwrap();
    let Value::Object(oid) = obj else {
        unreachable!()
    };
    dbms.db.objects.delete(oid).unwrap();
    let err = dbms.query("SELECT N(R) FROM T ;").unwrap_err();
    assert!(matches!(
        err,
        CoreError::Engine(EngineError::Adt(eds_adt::AdtError::DanglingOid(_)))
    ));
}

#[test]
fn zero_pass_sequence_is_identity() {
    let mut dbms = Dbms::new().unwrap();
    dbms.execute_ddl("TABLE T (X : INT);").unwrap();
    dbms.add_rule_source("seq((merging), 0) ;").unwrap();
    let prepared = dbms.prepare("SELECT X FROM T WHERE 1 = 1 ;").unwrap();
    let rewritten = dbms.rewrite(&prepared).unwrap();
    assert_eq!(rewritten.expr, prepared.expr);
}

#[test]
fn limit_zero_versus_saturation_equivalence_of_results() {
    // Whatever the limit, rewriting must never change answers — even
    // when a budget trips mid-way through a rewrite cascade.
    let mut dbms = Dbms::new().unwrap();
    dbms.execute_ddl(
        "TABLE T (X : INT, Y : INT);
         CREATE VIEW V1 (X, Y) AS SELECT X, Y FROM T WHERE X > 0 ;
         CREATE VIEW V2 (X, Y) AS SELECT X, Y FROM V1 WHERE Y > 0 ;",
    )
    .unwrap();
    for i in -3i64..10 {
        dbms.insert("T", vec![i.into(), (i * 2 - 5).into()])
            .unwrap();
    }
    let sql = "SELECT X FROM V2 WHERE X < 8 AND X = X ;";
    let reference = dbms.query_unoptimized(sql).unwrap();
    for limit in [0u64, 1, 2, 3, 5, 8, 13, 100] {
        dbms.rewriter.set_all_limits(Limit::Finite(limit));
        let got = dbms.query(sql).unwrap();
        assert!(
            got.set_eq(&reference),
            "limit {limit} changed results: {:?} vs {:?}",
            got.sorted_rows(),
            reference.sorted_rows()
        );
    }
}
