//! Robustness: random garbage must never panic any parser — every input
//! either parses or produces a positioned error. 512 seeded cases each.

use eds_testkit::StdRng;

const CASES: u64 = 512;

fn ascii_soup(rng: &mut StdRng, max_len: usize) -> String {
    let len = rng.gen_range(0..max_len + 1);
    (0..len)
        .map(|_| {
            if rng.gen_bool(0.05) {
                '\n'
            } else {
                // Printable ASCII: ' ' ..= '~'.
                (rng.gen_range(0x20u8..0x7F)) as char
            }
        })
        .collect()
}

fn unicode_soup(rng: &mut StdRng, max_len: usize) -> String {
    let len = rng.gen_range(0..max_len + 1);
    (0..len)
        .map(|_| match rng.gen_range(0u32..4) {
            0 => (rng.gen_range(0x20u8..0x7F)) as char,
            1 => char::from_u32(rng.gen_range(0xA1u32..0x500)).unwrap_or('¿'),
            2 => char::from_u32(rng.gen_range(0x2190u32..0x2600)).unwrap_or('→'),
            _ => char::from_u32(rng.gen_range(0x1F300u32..0x1F600)).unwrap_or('🌀'),
        })
        .collect()
}

fn token_soup(rng: &mut StdRng, tokens: &[&str]) -> String {
    let n = rng.gen_range(0usize..30);
    (0..n)
        .map(|_| *rng.choose(tokens).unwrap())
        .collect::<Vec<_>>()
        .join(" ")
}

#[test]
fn esql_parser_never_panics() {
    let mut rng = StdRng::seed_from_u64(0xE50_0001);
    for _ in 0..CASES {
        let input = ascii_soup(&mut rng, 120);
        let _ = eds_esql::parse_statements(&input);
    }
}

#[test]
fn esql_parser_never_panics_on_tokenish_soup() {
    const TOKENS: &[&str] = &[
        "SELECT", "FROM", "WHERE", "GROUP", "BY", "UNION", "TYPE", "TABLE", "CREATE", "VIEW", "AS",
        "INSERT", "INTO", "VALUES", "(", ")", ",", ";", ".", ":", "=", "<", ">", "<=", "<>", "AND",
        "OR", "NOT", "IN", "ALL", "MEMBER", "MakeSet", "T", "X", "Y", "'lit'", "42", "1.5", "*",
        "+", "-",
    ];
    let mut rng = StdRng::seed_from_u64(0xE50_0002);
    for _ in 0..CASES {
        let input = token_soup(&mut rng, TOKENS);
        let _ = eds_esql::parse_statements(&input);
    }
}

#[test]
fn rule_parser_never_panics() {
    let mut rng = StdRng::seed_from_u64(0xE50_0003);
    for _ in 0..CASES {
        let input = ascii_soup(&mut rng, 120);
        let _ = eds_rewrite::parse_source(&input);
    }
}

#[test]
fn rule_parser_never_panics_on_tokenish_soup() {
    const TOKENS: &[&str] = &[
        "Rule", ":", "/", "-->", ";", "(", ")", "{", "}", ",", "SEARCH", "LIST", "SET", "FIX", "x",
        "f", "a", "x*", "y*", "AND", "OR", "NOT", "TRUE", "FALSE", "=", "<=", "1.2", "42", "'s'",
        "block", "seq", "INF", "ISA", "EVALUATE",
    ];
    let mut rng = StdRng::seed_from_u64(0xE50_0004);
    for _ in 0..CASES {
        let input = token_soup(&mut rng, TOKENS);
        let _ = eds_rewrite::parse_source(&input);
    }
}

#[test]
fn lexers_handle_unicode_gracefully() {
    let mut rng = StdRng::seed_from_u64(0xE50_0005);
    for _ in 0..CASES {
        // Non-ASCII input must produce errors, not panics.
        let input = unicode_soup(&mut rng, 60);
        let _ = eds_esql::parse_statements(&input);
        let _ = eds_rewrite::parse_source(&input);
    }
}
