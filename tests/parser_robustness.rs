//! Robustness: random garbage must never panic any parser — every input
//! either parses or produces a positioned error.

use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn esql_parser_never_panics(input in "[ -~\\n]{0,120}") {
        let _ = eds_esql::parse_statements(&input);
    }

    #[test]
    fn esql_parser_never_panics_on_tokenish_soup(
        tokens in prop::collection::vec(
            prop::sample::select(vec![
                "SELECT", "FROM", "WHERE", "GROUP", "BY", "UNION", "TYPE",
                "TABLE", "CREATE", "VIEW", "AS", "INSERT", "INTO", "VALUES",
                "(", ")", ",", ";", ".", ":", "=", "<", ">", "<=", "<>",
                "AND", "OR", "NOT", "IN", "ALL", "MEMBER", "MakeSet",
                "T", "X", "Y", "'lit'", "42", "1.5", "*", "+", "-",
            ]),
            0..30,
        )
    ) {
        let input = tokens.join(" ");
        let _ = eds_esql::parse_statements(&input);
    }

    #[test]
    fn rule_parser_never_panics(input in "[ -~\\n]{0,120}") {
        let _ = eds_rewrite::parse_source(&input);
    }

    #[test]
    fn rule_parser_never_panics_on_tokenish_soup(
        tokens in prop::collection::vec(
            prop::sample::select(vec![
                "Rule", ":", "/", "-->", ";", "(", ")", "{", "}", ",",
                "SEARCH", "LIST", "SET", "FIX", "x", "f", "a", "x*", "y*",
                "AND", "OR", "NOT", "TRUE", "FALSE", "=", "<=", "1.2",
                "42", "'s'", "block", "seq", "INF", "ISA", "EVALUATE",
            ]),
            0..30,
        )
    ) {
        let input = tokens.join(" ");
        let _ = eds_rewrite::parse_source(&input);
    }

    #[test]
    fn lexers_handle_unicode_gracefully(input in "\\PC{0,60}") {
        // Non-ASCII input must produce errors, not panics.
        let _ = eds_esql::parse_statements(&input);
        let _ = eds_rewrite::parse_source(&input);
    }
}
